// Command benchcheck is a dependency-free benchmark-regression gate in the
// spirit of benchstat: it parses `go test -bench` text, reduces repeated
// counts to per-benchmark medians, and either writes a JSON baseline or
// compares against one, failing when the geometric-mean slowdown across the
// gated benchmarks exceeds a threshold. When the bench output carries
// -benchmem columns, allocations per op are gated too: any gated benchmark
// whose median allocs/op grows past its own threshold fails the check, so
// an accidentally re-introduced hot-loop allocation is caught even when it
// is too cheap to move ns/op.
//
// Write a baseline (commit the output as BENCH_baseline.json):
//
//	go test -run '^$' -bench . -benchmem -count=6 ./sim | benchcheck -write BENCH_baseline.json
//
// Gate a change against it:
//
//	go test -run '^$' -bench . -benchmem -count=6 ./sim | benchcheck -baseline BENCH_baseline.json
//
// Medians of several counts damp scheduler noise; the geomean (rather than
// any single benchmark) damps it further. Benchmarks present on only one
// side are reported but do not affect the verdict.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference: median ns/op (and, when recorded
// with -benchmem, median allocs/op) per benchmark, with the machine context
// that produced it recorded for humans reading diffs.
type Baseline struct {
	// Note is free-form provenance (host CPU line from the bench output).
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to the
	// median ns/op across counts.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps benchmark name to the median allocs/op. Absent for
	// baselines recorded without -benchmem; such benchmarks are not
	// alloc-gated.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkRunUntraced-8   	       9	 127850275 ns/op	11328728 B/op	     246 allocs/op
//
// The B/op and allocs/op columns only appear under -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9]+) allocs/op)?`)

// samples accumulates the repeated-count measurements of one benchmark.
type samples struct {
	ns     []float64
	allocs []float64 // empty when the run lacked -benchmem
}

// medians is one benchmark's noise-damped result.
type medians struct {
	ns     float64
	allocs float64
	hasMem bool
}

func main() {
	var (
		write          = flag.String("write", "", "write a baseline JSON to this path instead of comparing")
		baseline       = flag.String("baseline", "", "baseline JSON to compare the piped bench output against")
		threshold      = flag.Float64("threshold", 1.10, "fail when geomean(new/old) ns/op exceeds this ratio")
		allocThreshold = flag.Float64("alloc-threshold", 1.10, "fail when any gated benchmark's allocs/op exceeds this ratio of its baseline")
		filter         = flag.String("filter", "", "regexp restricting which benchmarks participate in the gate")
	)
	flag.Parse()
	if (*write == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -write or -baseline is required")
		os.Exit(2)
	}

	parsed, note, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if len(parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin (pipe `go test -bench` output)")
		os.Exit(2)
	}
	meds := reduce(parsed)

	if *write != "" {
		if err := writeBaseline(*write, note, meds); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: wrote %d benchmark medians to %s\n", len(meds), *write)
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	var keep *regexp.Regexp
	if *filter != "" {
		keep, err = regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}
	os.Exit(compare(os.Stdout, os.Stderr, base, meds, keep, *threshold, *allocThreshold))
}

// writeBaseline marshals the medians as a baseline file. Alloc medians are
// only recorded when every parsed benchmark carried them (a mixed run would
// otherwise silently un-gate the missing ones forever).
func writeBaseline(path, note string, meds map[string]medians) error {
	b := Baseline{Note: note, NsPerOp: make(map[string]float64, len(meds))}
	allMem := true
	for _, m := range meds {
		if !m.hasMem {
			allMem = false
			break
		}
	}
	if allMem {
		b.AllocsPerOp = make(map[string]float64, len(meds))
	}
	for name, m := range meds {
		b.NsPerOp[name] = m.ns
		if allMem {
			b.AllocsPerOp[name] = m.allocs
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare prints the per-benchmark table and verdicts and returns the
// process exit code: 0 ok, 1 regression, 2 nothing to gate.
//
// Benchmarks on only one side are reported but never gated: an added
// benchmark has no baseline to regress against, and a removed one has no
// measurement. The ns/op verdict is the geomean ratio across gated
// benchmarks against threshold; the allocs/op verdict is per-benchmark
// (allocation counts are near-deterministic, so one benchmark's regression
// must not hide in a geomean).
func compare(out, errw io.Writer, base Baseline, meds map[string]medians, keep *regexp.Regexp, threshold, allocThreshold float64) int {
	names := make([]string, 0, len(meds))
	for name := range meds {
		names = append(names, name)
	}
	sort.Strings(names)

	var logSum float64
	var gated int
	var allocFailures []string
	for _, name := range names {
		now := meds[name]
		old, ok := base.NsPerOp[name]
		if !ok {
			fmt.Fprintf(out, "%-40s %12.0f ns/op  (no baseline, ignored)\n", name, now.ns)
			continue
		}
		ratio := now.ns / old
		mark := ""
		isGated := keep == nil || keep.MatchString(name)
		if isGated {
			logSum += math.Log(ratio)
			gated++
		} else {
			mark = "  (not gated)"
		}
		fmt.Fprintf(out, "%-40s %12.0f -> %12.0f ns/op  %+6.1f%%%s\n",
			name, old, now.ns, (ratio-1)*100, mark)
		oldAllocs, haveOld := base.AllocsPerOp[name]
		if !haveOld || !now.hasMem {
			continue
		}
		fmt.Fprintf(out, "%-40s %12.0f -> %12.0f allocs/op%s\n",
			name, oldAllocs, now.allocs, mark)
		if isGated && allocRegressed(oldAllocs, now.allocs, allocThreshold) {
			allocFailures = append(allocFailures, fmt.Sprintf(
				"%s: allocs/op %.0f -> %.0f exceeds threshold %.2f", name, oldAllocs, now.allocs, allocThreshold))
		}
	}
	for name := range base.NsPerOp {
		if _, ok := meds[name]; !ok {
			fmt.Fprintf(out, "%-40s missing from this run (ignored)\n", name)
		}
	}
	if gated == 0 {
		fmt.Fprintln(errw, "benchcheck: no benchmarks in common with the baseline")
		return 2
	}
	geomean := math.Exp(logSum / float64(gated))
	fmt.Fprintf(out, "geomean over %d gated benchmark(s): %+.1f%% (threshold %+.1f%%)\n",
		gated, (geomean-1)*100, (threshold-1)*100)
	failed := false
	if geomean > threshold {
		fmt.Fprintf(errw, "benchcheck: FAIL: geomean slowdown %.3f exceeds %.3f\n", geomean, threshold)
		failed = true
	}
	for _, f := range allocFailures {
		fmt.Fprintf(errw, "benchcheck: FAIL: %s\n", f)
		failed = true
	}
	if failed {
		return 1
	}
	fmt.Fprintln(out, "benchcheck: ok")
	return 0
}

// allocRegressed reports whether now allocs/op regresses past the ratio
// threshold of old. A zero-alloc baseline tolerates no allocations at all.
func allocRegressed(old, now, threshold float64) bool {
	if old == 0 {
		return now > 0
	}
	return now/old > threshold
}

// parse collects per-benchmark samples from `go test -bench` text and
// returns the cpu: line (if any) as provenance.
func parse(r io.Reader) (map[string]*samples, string, error) {
	out := make(map[string]*samples)
	var note string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu:") {
			note = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{}
			out[m[1]] = s
		}
		s.ns = append(s.ns, v)
		if m[3] != "" {
			a, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, "", fmt.Errorf("bad allocs/op in %q: %v", line, err)
			}
			s.allocs = append(s.allocs, a)
		}
	}
	return out, note, sc.Err()
}

// reduce folds each benchmark's samples to medians. Alloc medians are only
// meaningful when every count carried the -benchmem columns.
func reduce(parsed map[string]*samples) map[string]medians {
	out := make(map[string]medians, len(parsed))
	for name, s := range parsed {
		m := medians{ns: median(s.ns)}
		if len(s.allocs) == len(s.ns) && len(s.allocs) > 0 {
			m.allocs = median(s.allocs)
			m.hasMem = true
		}
		out[name] = m
	}
	return out
}

// median of the samples (mean of the middle two for even counts).
func median(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
