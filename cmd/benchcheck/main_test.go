package main

import (
	"math"
	"strings"
	"testing"
)

func TestMedianOddPicksMiddle(t *testing.T) {
	if got := median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("median(5,1,3) = %v, want 3", got)
	}
}

// An even sample count has no middle element; the median must average the
// middle pair, not arbitrarily pick one of them.
func TestMedianEvenAveragesMiddlePair(t *testing.T) {
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median(4,1,2,3) = %v, want 2.5", got)
	}
	if got := median([]float64{10, 20}); got != 15 {
		t.Errorf("median(10,20) = %v, want 15", got)
	}
}

const benchmemOutput = `goos: linux
cpu: Test CPU @ 2.0GHz
BenchmarkRunUntraced-8      12    100000000 ns/op    5242880 B/op    59 allocs/op
BenchmarkRunUntraced-8      12    110000000 ns/op    5242880 B/op    61 allocs/op
BenchmarkNewHotness-8       50     20000000 ns/op    1048576 B/op    10 allocs/op
`

func TestParseBenchmem(t *testing.T) {
	parsed, note, err := parse(strings.NewReader(benchmemOutput))
	if err != nil {
		t.Fatal(err)
	}
	if note != "Test CPU @ 2.0GHz" {
		t.Errorf("note = %q", note)
	}
	s := parsed["BenchmarkRunUntraced"]
	if s == nil || len(s.ns) != 2 || len(s.allocs) != 2 {
		t.Fatalf("BenchmarkRunUntraced samples = %+v, want 2 ns + 2 allocs", s)
	}
	meds := reduce(parsed)
	m := meds["BenchmarkRunUntraced"]
	if !m.hasMem || m.allocs != 60 {
		t.Errorf("allocs median = %+v, want hasMem with 60 (mean of 59, 61)", m)
	}
	if m.ns != 105000000 {
		t.Errorf("ns median = %v, want 105000000", m.ns)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	parsed, _, err := parse(strings.NewReader(
		"BenchmarkRunUntraced-8      12    100000000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	meds := reduce(parsed)
	if m := meds["BenchmarkRunUntraced"]; m.hasMem {
		t.Errorf("hasMem = true for output without -benchmem columns: %+v", m)
	}
}

// compareResult runs compare with captured output.
func compareResult(t *testing.T, base Baseline, meds map[string]medians, threshold, allocThreshold float64) (int, string, string) {
	t.Helper()
	var out, errw strings.Builder
	code := compare(&out, &errw, base, meds, nil, threshold, allocThreshold)
	return code, out.String(), errw.String()
}

// A benchmark added since the baseline was recorded must be reported but
// excluded from the geomean: here the added benchmark is 10x slower than
// anything gated, yet the verdict stays ok.
func TestCompareAddedBenchmarkWarnsAndSkips(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{"BenchmarkOld": 100}}
	meds := map[string]medians{
		"BenchmarkOld": {ns: 100},
		"BenchmarkNew": {ns: 1e9},
	}
	code, out, _ := compareResult(t, base, meds, 1.10, 1.10)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (added benchmark must not gate)", code)
	}
	if !strings.Contains(out, "BenchmarkNew") || !strings.Contains(out, "no baseline, ignored") {
		t.Errorf("added benchmark not warned about:\n%s", out)
	}
	if !strings.Contains(out, "geomean over 1 gated benchmark(s)") {
		t.Errorf("geomean should cover only the common benchmark:\n%s", out)
	}
}

// A benchmark removed since the baseline must be reported but not fail the
// gate.
func TestCompareRemovedBenchmarkIgnored(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{
		"BenchmarkKept": 100, "BenchmarkGone": 100}}
	meds := map[string]medians{"BenchmarkKept": {ns: 100}}
	code, out, _ := compareResult(t, base, meds, 1.10, 1.10)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "BenchmarkGone") || !strings.Contains(out, "missing from this run") {
		t.Errorf("removed benchmark not reported:\n%s", out)
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	base := Baseline{NsPerOp: map[string]float64{"BenchmarkX": 100}}
	meds := map[string]medians{"BenchmarkX": {ns: 150}}
	code, _, errs := compareResult(t, base, meds, 1.10, 1.10)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a 50%% slowdown", code)
	}
	if !strings.Contains(errs, "geomean slowdown") {
		t.Errorf("stderr should name the geomean failure: %q", errs)
	}
}

// An allocation regression must fail even when ns/op is flat — the whole
// point of gating allocs/op separately.
func TestCompareAllocRegressionFails(t *testing.T) {
	base := Baseline{
		NsPerOp:     map[string]float64{"BenchmarkX": 100},
		AllocsPerOp: map[string]float64{"BenchmarkX": 59},
	}
	meds := map[string]medians{"BenchmarkX": {ns: 100, allocs: 150, hasMem: true}}
	code, _, errs := compareResult(t, base, meds, 1.10, 1.10)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for an alloc regression with flat ns/op", code)
	}
	if !strings.Contains(errs, "allocs/op") {
		t.Errorf("stderr should name the alloc failure: %q", errs)
	}
}

// Small alloc jitter within the threshold passes, and a baseline without
// alloc data never alloc-gates.
func TestCompareAllocTolerance(t *testing.T) {
	base := Baseline{
		NsPerOp:     map[string]float64{"BenchmarkX": 100},
		AllocsPerOp: map[string]float64{"BenchmarkX": 59},
	}
	meds := map[string]medians{"BenchmarkX": {ns: 100, allocs: 61, hasMem: true}}
	if code, _, _ := compareResult(t, base, meds, 1.10, 1.10); code != 0 {
		t.Errorf("exit = %d, want 0 for allocs within threshold", code)
	}

	noAllocs := Baseline{NsPerOp: map[string]float64{"BenchmarkX": 100}}
	meds = map[string]medians{"BenchmarkX": {ns: 100, allocs: 1e6, hasMem: true}}
	if code, _, _ := compareResult(t, noAllocs, meds, 1.10, 1.10); code != 0 {
		t.Errorf("exit = %d, want 0 when the baseline has no alloc data", code)
	}
}

func TestAllocRegressedZeroBaseline(t *testing.T) {
	if allocRegressed(0, 0, 1.10) {
		t.Error("0 -> 0 is not a regression")
	}
	if !allocRegressed(0, 1, 1.10) {
		t.Error("0 -> 1 must regress: a zero-alloc loop gained an allocation")
	}
}

func TestGeomeanMath(t *testing.T) {
	// Two gated benchmarks at +21% and -10%: geomean = sqrt(1.21*0.9) ≈ 1.0436.
	base := Baseline{NsPerOp: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}}
	meds := map[string]medians{
		"BenchmarkA": {ns: 121},
		"BenchmarkB": {ns: 90},
	}
	want := math.Sqrt(1.21 * 0.9)
	if code, _, _ := compareResult(t, base, meds, want+0.001, 1.10); code != 0 {
		t.Error("geomean just under threshold should pass")
	}
	if code, _, _ := compareResult(t, base, meds, want-0.001, 1.10); code != 1 {
		t.Error("geomean just over threshold should fail")
	}
}
