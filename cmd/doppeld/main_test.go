package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// bootRole starts run() for one role in-process and returns its base URL
// plus a stop function that cancels the role and waits for run to return.
func bootRole(t *testing.T, args ...string) (baseURL string, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), t.Logf, ready) }()
	select {
	case addr := <-ready:
		baseURL = "http://" + addr.String()
	case err := <-done:
		cancel()
		t.Fatalf("run(%v) exited before serving: %v", args, err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatalf("run(%v) never became ready", args)
	}
	stopped := false
	stop = func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(40 * time.Second):
			t.Fatal("run did not return after cancel")
			return nil
		}
	}
	t.Cleanup(func() { stop() })
	return baseURL, stop
}

func waitForWorkers(t *testing.T, coordURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(coordURL + "/v1/cluster/workers")
		if err == nil {
			var body struct {
				Workers []json.RawMessage `json:"workers"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil && len(body.Workers) == n {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("coordinator never reported %d workers", n)
}

// TestWorkerDeregistersOnShutdown boots a coordinator and a worker through
// the real role entry points and checks the shutdown contract: cancelling
// the worker's context deregisters it from the coordinator before run
// returns — the ring stops routing to a worker that is about to vanish.
func TestWorkerDeregistersOnShutdown(t *testing.T) {
	coordURL, _ := bootRole(t, "-role", "coordinator")
	_, stopWorker := bootRole(t, "-role", "worker", "-coordinator", coordURL, "-worker-id", "wA", "-workers", "1")
	waitForWorkers(t, coordURL, 1)

	if err := stopWorker(); err != nil {
		t.Fatalf("worker shutdown: %v", err)
	}
	// Deregistration happened before run returned, so the registry must be
	// empty immediately — no heartbeat-timeout grace, no polling.
	waitForWorkers(t, coordURL, 0)
}

// TestGracefulShutdownDrainsSweepStream boots a one-worker cluster, starts
// a streaming sweep, and shuts the coordinator down mid-stream. The
// shutdown must drain: the client keeps receiving progress events through
// the terminal "done" summary, not a severed connection.
func TestGracefulShutdownDrainsSweepStream(t *testing.T) {
	coordURL, stopCoord := bootRole(t, "-role", "coordinator")
	_, _ = bootRole(t, "-role", "worker", "-coordinator", coordURL, "-worker-id", "wB", "-workers", "1")
	waitForWorkers(t, coordURL, 1)

	body := `{"workloads":["stream"],"schemes":["unsafe","dom"],"scale":"test","stream":"ndjson"}`
	resp, err := http.Post(coordURL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}

	type event struct {
		Type   string `json:"type"`
		Errors int    `json:"errors"`
		Error  string `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)

	// Read the first progress event, then yank the coordinator's context
	// while the sweep is demonstrably mid-stream.
	if !sc.Scan() {
		t.Fatalf("stream ended before first event: %v", sc.Err())
	}
	var first event
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad first event %q: %v", sc.Text(), err)
	}
	if first.Type != "progress" {
		t.Fatalf("first event type %q, want progress", first.Type)
	}
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- stopCoord() }()

	events := 1
	sawDone := false
	for sc.Scan() {
		events++
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		if ev.Error != "" {
			t.Errorf("cell failed during drain: %s", ev.Error)
		}
		if ev.Type == "done" {
			sawDone = true
			if ev.Errors != 0 {
				t.Errorf("drained sweep finished with %d errors", ev.Errors)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream severed instead of drained after %d events: %v", events, err)
	}
	if !sawDone {
		t.Fatalf("stream ended after %d events without the terminal done event", events)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("coordinator shutdown: %v", err)
	}
}

// TestSingleRoleStillServes pins the default role: no cluster flags, same
// standalone API as ever.
func TestSingleRoleStillServes(t *testing.T) {
	baseURL, _ := bootRole(t, "-workers", "1")
	resp, err := http.Post(baseURL+"/v1/run", "application/json",
		strings.NewReader(`{"workload":"stream","scale":"test"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	var out struct {
		Result struct {
			Cycles uint64 `json:"cycles"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Cycles == 0 {
		t.Error("single-role run returned zero cycles")
	}
}

// TestWorkerRoleRequiresCoordinator pins the flag contract.
func TestWorkerRoleRequiresCoordinator(t *testing.T) {
	err := run(context.Background(), []string{"-role", "worker", "-addr", "127.0.0.1:0"}, t.Logf, nil)
	if err == nil || !strings.Contains(err.Error(), "-coordinator") {
		t.Errorf("worker without -coordinator: err = %v, want mention of -coordinator", err)
	}
}

// TestUnknownRoleRejected pins the error for a bad -role.
func TestUnknownRoleRejected(t *testing.T) {
	err := run(context.Background(), []string{"-role", "conductor"}, t.Logf, nil)
	if err == nil || !strings.Contains(err.Error(), "conductor") {
		t.Errorf("unknown role: err = %v, want mention of the bad role", err)
	}
}
