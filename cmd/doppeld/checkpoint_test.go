package main

import (
	"bytes"
	"doppelganger/api"
	"encoding/json"
	"net/http"
	"testing"
)

// createCheckpoint posts a checkpoint request and decodes the response.
func createCheckpoint(t *testing.T, url, body string) api.CheckpointResponse {
	t.Helper()
	resp, b := postJSON(t, url+"/v1/checkpoint", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", resp.StatusCode, b)
	}
	var ck api.CheckpointResponse
	if err := json.Unmarshal(b, &ck); err != nil {
		t.Fatalf("bad checkpoint JSON: %v\n%s", err, b)
	}
	return ck
}

func TestCheckpointCreateAndRun(t *testing.T) {
	ts := newTestServer(t)
	ck := createCheckpoint(t, ts.URL,
		`{"workload":"stream","scale":"test","warmup_insts":5000}`)
	if ck.ID == "" || ck.Workload != "stream" || ck.Scheme != "unsafe" {
		t.Fatalf("bad checkpoint response: %+v", ck)
	}
	if ck.Insts < 5000 || ck.Digest == "" || ck.SizeBytes == 0 {
		t.Fatalf("implausible checkpoint response: %+v", ck)
	}

	// A cold run and a warm-started run of the same cell agree
	// architecturally.
	var cold, warm api.RunResponse
	resp, b := postJSON(t, ts.URL+"/v1/run",
		`{"workload":"stream","scale":"test","scheme":"stt","ap":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run status %d: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &cold); err != nil {
		t.Fatal(err)
	}
	resp, b = postJSON(t, ts.URL+"/v1/run",
		`{"workload":"stream","scale":"test","scheme":"stt","ap":true,"checkpoint":"`+ck.ID+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run status %d: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Result.Checksum != cold.Result.Checksum || warm.Result.Insts != cold.Result.Insts {
		t.Errorf("warm run diverged architecturally: cold %+v, warm %+v", cold.Result, warm.Result)
	}

	// Workload may be omitted entirely: the checkpoint embeds its program.
	resp, b = postJSON(t, ts.URL+"/v1/run",
		`{"scheme":"stt","ap":true,"checkpoint":"`+ck.ID+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint-only run status %d: %s", resp.StatusCode, b)
	}
	var only api.RunResponse
	if err := json.Unmarshal(b, &only); err != nil {
		t.Fatal(err)
	}
	if only.Workload != "stream" || only.Result.Checksum != cold.Result.Checksum {
		t.Errorf("checkpoint-only run wrong: %+v", only)
	}
}

func TestCheckpointExportImportRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	ck := createCheckpoint(t, ts.URL,
		`{"workload":"pointer_chase","scale":"test","scheme":"dom","warmup_insts":3000}`)

	resp, raw := getJSON(t, ts.URL+"/v1/checkpoint/"+ck.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Checkpoint-Digest"); got != ck.Digest {
		t.Errorf("export digest header %q, want %q", got, ck.Digest)
	}
	if len(raw) != ck.SizeBytes {
		t.Errorf("exported %d bytes, response said %d", len(raw), ck.SizeBytes)
	}

	imp, err := http.Post(ts.URL+"/v1/checkpoint/import", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(imp.Body)
	if imp.StatusCode != http.StatusOK {
		t.Fatalf("import status %d: %s", imp.StatusCode, buf.Bytes())
	}
	var reimported api.CheckpointResponse
	if err := json.Unmarshal(buf.Bytes(), &reimported); err != nil {
		t.Fatal(err)
	}
	if reimported.Digest != ck.Digest {
		t.Errorf("import digest %q, want %q", reimported.Digest, ck.Digest)
	}
	if reimported.ID == ck.ID {
		t.Error("import reused the original ID")
	}
}

func TestCheckpointRejections(t *testing.T) {
	ts := newTestServer(t)

	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"missing workload", `{"warmup_insts":1000}`, http.StatusBadRequest},
		{"missing warmup", `{"workload":"stream","scale":"test"}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope","warmup_insts":1000}`, http.StatusBadRequest},
		{"unknown scheme", `{"workload":"stream","scheme":"nope","warmup_insts":1000}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if resp, b := postJSON(t, ts.URL+"/v1/checkpoint", c.body); resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d: %s", c.name, resp.StatusCode, c.wantStatus, b)
		}
	}

	// Corrupt import is refused by the format's checksum discipline.
	resp, err := http.Post(ts.URL+"/v1/checkpoint/import", "application/octet-stream",
		bytes.NewReader([]byte("DGCKgarbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt import: status %d, want 400", resp.StatusCode)
	}

	// Unknown checkpoint reference on /v1/run.
	if resp, b := postJSON(t, ts.URL+"/v1/run",
		`{"workload":"stream","scale":"test","checkpoint":"ckpt-999"}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown checkpoint ref: status %d, want 404: %s", resp.StatusCode, b)
	}

	// Incompatible workload cross-check: checkpoint of stream, run of
	// pointer_chase.
	ck := createCheckpoint(t, ts.URL, `{"workload":"stream","scale":"test","warmup_insts":2000}`)
	if resp, b := postJSON(t, ts.URL+"/v1/run",
		`{"workload":"pointer_chase","scale":"test","checkpoint":"`+ck.ID+`"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("incompatible program: status %d, want 400: %s", resp.StatusCode, b)
	}

	// Missing export ID.
	if resp, _ := getJSON(t, ts.URL+"/v1/checkpoint/ckpt-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing export: status %d, want 404", resp.StatusCode)
	}
}

func TestCheckpointTracedRun(t *testing.T) {
	ts := newTestServer(t)
	ck := createCheckpoint(t, ts.URL, `{"workload":"stream","scale":"test","warmup_insts":5000}`)
	resp, b := postJSON(t, ts.URL+"/v1/run",
		`{"scheme":"dom","checkpoint":"`+ck.ID+`","trace":true,"trace_events":512}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced warm run status %d: %s", resp.StatusCode, b)
	}
	var run api.RunResponse
	if err := json.Unmarshal(b, &run); err != nil {
		t.Fatal(err)
	}
	if len(run.Events) == 0 {
		t.Fatal("traced warm run returned no events")
	}
	for _, e := range run.Events {
		if e.Cycle <= ck.Cycle {
			t.Fatalf("phantom pre-restore event at cycle %d (checkpoint cycle %d)", e.Cycle, ck.Cycle)
		}
	}
}
