package main

import (
	"fmt"
	"io"
	"net/http"

	"doppelganger/api"
	"doppelganger/sim"
)

// maxStoredCheckpoints bounds the in-memory checkpoint store (FIFO
// eviction). Checkpoints weigh megabytes, not the kilobytes of a result, so
// this cap is much tighter than maxStoredResults.
const maxStoredCheckpoints = 16

// maxImportBytes bounds the body of POST /v1/checkpoint/import.
const maxImportBytes = 64 << 20

// handleCheckpointCreate warms a workload on the server and stores the
// snapshot for later warm-started runs.
func (s *server) handleCheckpointCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CheckpointRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, "missing \"workload\"")
		return
	}
	if req.WarmupInsts == 0 {
		writeError(w, http.StatusBadRequest, "missing \"warmup_insts\": say how far to warm before snapshotting")
		return
	}
	scale, _, err := parseScale(req.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	schemeName := req.Scheme
	if schemeName == "" {
		schemeName = "unsafe"
	}
	scheme, err := sim.ParseScheme(schemeName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	prog, err := s.program(req.Workload, scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ck, err := sim.Snapshot(prog, sim.Config{Scheme: scheme, AddressPrediction: req.AP}, req.WarmupInsts)
	if err != nil {
		writeSimError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.storeCheckpoint(ck))
}

// handleCheckpointImport stores a checkpoint from its raw encoding (the
// bytes GET /v1/checkpoint/{id} or doppelsim -checkpoint-out produce).
// Decoding verifies magic, version and every section checksum, so a
// corrupt or foreign file is refused here, never restored.
func (s *server) handleCheckpointImport(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxImportBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	ck, err := sim.DecodeCheckpoint(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.storeCheckpoint(ck))
}

// handleCheckpointExport serves a stored checkpoint's canonical encoding,
// suitable for doppelsim -checkpoint-in or re-import on another server.
func (s *server) handleCheckpointExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ck := s.checkpoint(id)
	if ck == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no stored checkpoint %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Checkpoint-Digest", ck.Digest())
	w.Write(ck.Encode())
}

// checkpoint looks up a stored checkpoint by ID (nil if absent or evicted).
func (s *server) checkpoint(id string) *sim.Checkpoint {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.ckpts[id]
}

// storeCheckpoint retains a checkpoint under a fresh ID, evicting the
// oldest beyond the cap, and describes it.
func (s *server) storeCheckpoint(ck *sim.Checkpoint) api.CheckpointResponse {
	id := s.newID("ckpt")
	s.ckptMu.Lock()
	s.ckpts[id] = ck
	s.ckptOrder = append(s.ckptOrder, id)
	for len(s.ckptOrder) > maxStoredCheckpoints {
		delete(s.ckpts, s.ckptOrder[0])
		s.ckptOrder = s.ckptOrder[1:]
	}
	s.ckptMu.Unlock()
	meta := ck.Meta()
	st := ck.State()
	return api.CheckpointResponse{
		Schema:      api.SchemaVersion,
		ID:          id,
		Workload:    meta.ProgramName,
		Scheme:      meta.WarmScheme,
		AP:          meta.WarmAP,
		WarmupInsts: meta.WarmupInsts,
		Insts:       st.Stats.Committed,
		Cycle:       st.Cycle,
		Digest:      ck.Digest(),
		SizeBytes:   len(ck.Encode()),
	}
}
