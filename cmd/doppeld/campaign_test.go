package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"doppelganger/api"
)

// TestCampaignEndpoint runs a tiny guided campaign against the unsafe
// baseline and checks the response shape: budget echoed, pairs = evals ×
// configs, leaks carry minimized reproducers with stable keys, and the
// result is stored for later retrieval.
func TestCampaignEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/campaign",
		`{"schemes":["unsafe"],"ap":"off","budget":8,"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var c api.CampaignResponse
	if err := json.Unmarshal(body, &c); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if c.Schema != api.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", c.Schema, api.SchemaVersion)
	}
	if c.Budget != 8 || c.Evals != 8 || c.Pairs != 8 {
		t.Errorf("budget/evals/pairs = %d/%d/%d, want 8/8/8", c.Budget, c.Evals, c.Pairs)
	}
	if c.Cells <= 0 {
		t.Errorf("cells = %d, want > 0", c.Cells)
	}
	if c.NewLeaks == 0 {
		t.Error("no leaks found against unsafe — campaign is not finding anything")
	}
	if len(c.Leaks) != c.NewLeaks {
		t.Errorf("%d leak entries, want new_leaks = %d", len(c.Leaks), c.NewLeaks)
	}
	keys := map[string]bool{}
	for _, lk := range c.Leaks {
		if lk.Config != "unsafe" {
			t.Errorf("leak config %q, want \"unsafe\"", lk.Config)
		}
		if lk.Params == "" || lk.Key == "" || len(lk.Components) == 0 {
			t.Errorf("leak missing params/key/components: %+v", lk)
		}
		if keys[lk.Key] {
			t.Errorf("duplicate leak key %s escaped dedup", lk.Key)
		}
		keys[lk.Key] = true
	}

	resp, body = getJSON(t, ts.URL+"/v1/results/"+c.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stored result: status %d: %s", resp.StatusCode, body)
	}
}

// TestCampaignEndpointRejects exercises the request validation paths.
func TestCampaignEndpointRejects(t *testing.T) {
	ts := newTestServer(t)
	for _, body := range []string{
		`{"schemes":["no-such-scheme"]}`,
		`{"ap":"sideways"}`,
		`{"bogus_field":1}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/campaign", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not an api.Error", body, raw)
		}
	}
}

// TestCampaignBudgetClamp: an oversized budget is clamped and a missing
// one defaulted, not refused. (Tested on the helper — a real 1024-eval
// campaign does not belong in a handler test.)
func TestCampaignBudgetClamp(t *testing.T) {
	if maxCampaignBudget >= 1<<16 {
		t.Fatal("clamp unreasonably large")
	}
	for _, tc := range []struct{ in, want int }{
		{0, defaultCampaignBudget},
		{-5, defaultCampaignBudget},
		{8, 8},
		{maxCampaignBudget, maxCampaignBudget},
		{1 << 20, maxCampaignBudget},
	} {
		if got := clampCampaignBudget(tc.in); got != tc.want {
			t.Errorf("clampCampaignBudget(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
