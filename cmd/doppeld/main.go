// Command doppeld serves the simulator as an HTTP service: single runs,
// whole experiment-matrix sweeps, stored results, health and engine
// statistics. Every simulation funnels through one shared execution engine,
// so concurrent clients share a bounded worker pool and an LRU result
// cache — a repeated sweep costs nothing but cache lookups.
//
//	doppeld -addr :8080 -workers 8
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"workload":"stream","scheme":"dom","ap":true,"scale":"test"}'
//	curl -s -X POST localhost:8080/v1/sweep -d '{"scale":"test"}'
//	curl -s localhost:8080/v1/results/sweep-1
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics          # Prometheus text format
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"workload":"stream","scale":"test","trace":true}'   # with events
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"doppelganger/internal/engine"
	"doppelganger/sim"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "engine worker-pool size (0 = one per CPU)")
		cacheSize = flag.Int("cache", engine.DefaultCacheSize, "result-cache capacity in entries (negative disables)")
		jobLimit  = flag.Duration("job-timeout", 0, "per-job wall-clock budget (0 = none)")
	)
	flag.Parse()

	met := sim.NewMetrics()
	eng := engine.New(engine.Options{
		Workers:    *workers,
		CacheSize:  *cacheSize,
		JobTimeout: *jobLimit,
		Metrics:    met,
	})
	srv := newServer(eng, met)
	hs := &http.Server{Handler: srv.handler()}

	// Listen explicitly (rather than ListenAndServe) so -addr :0 works:
	// the kernel-chosen port is in ln.Addr, and the log line below is the
	// contract scripts/smoke.sh parses to find the server.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("doppeld: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("doppeld: listening on %s (%d workers)", ln.Addr(), eng.Workers())

	select {
	case err := <-errc:
		log.Fatalf("doppeld: %v", err)
	case <-ctx.Done():
	}

	log.Print("doppeld: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("doppeld: shutdown: %v", err)
	}
	eng.Close()
}
