// Command doppeld serves the simulator as an HTTP service: single runs,
// whole experiment-matrix sweeps, stored results, health and engine
// statistics. Every simulation funnels through one shared execution engine,
// so concurrent clients share a bounded worker pool and an LRU result
// cache — a repeated sweep costs nothing but cache lookups.
//
// The process runs in one of three roles:
//
//	-role single       the classic standalone server (default)
//	-role coordinator  cluster front door: shards jobs across workers by
//	                   canonical cache key, serves the two-level result
//	                   tier, streams sweep progress
//	-role worker       executes jobs for a coordinator; also serves the
//	                   full standalone API locally
//
//	doppeld -addr :8080 -workers 8
//
//	doppeld -role coordinator -addr :9000 -store results.dgrs
//	doppeld -role worker -addr :8081 -coordinator http://127.0.0.1:9000
//	doppeld -role worker -addr :8082 -coordinator http://127.0.0.1:9000
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"workload":"stream","scheme":"dom","ap":true,"scale":"test"}'
//	curl -s -X POST localhost:8080/v1/sweep -d '{"scale":"test"}'
//	curl -s -N -X POST localhost:9000/v1/sweep -d '{"scale":"test","stream":"sse"}'
//	curl -s localhost:8080/v1/results/sweep-1
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics          # Prometheus text format
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"workload":"stream","scale":"test","trace":true}'   # with events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"doppelganger/internal/cluster"
	"doppelganger/internal/cluster/store"
	"doppelganger/internal/engine"
	"doppelganger/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], log.Printf, nil); err != nil {
		log.Fatalf("doppeld: %v", err)
	}
}

// run is the whole server lifecycle, separated from main so tests can boot
// any role in-process: parse flags, listen, serve until ctx is cancelled,
// then shut down gracefully (drain in-flight requests and streams; a worker
// deregisters from its coordinator before the listener closes). When ready
// is non-nil it receives the bound listen address once serving.
func run(ctx context.Context, args []string, logf func(string, ...any), ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("doppeld", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		role      = fs.String("role", "single", `process role: "single", "coordinator" or "worker"`)
		workers   = fs.Int("workers", 0, "engine worker-pool size (0 = one per CPU; single and worker roles)")
		cacheSize = fs.Int("cache", engine.DefaultCacheSize, "result-cache capacity in entries (negative disables)")
		jobLimit  = fs.Duration("job-timeout", 0, "per-job wall-clock budget (0 = none)")

		// Coordinator role.
		storePath = fs.String("store", "", "persistent result store path (coordinator; empty = memory only)")
		rateLimit = fs.Float64("rate-limit", 0, "per-client requests/second (coordinator; 0 = unlimited)")
		rateBurst = fs.Int("rate-burst", 0, "per-client token-bucket depth (coordinator; 0 = 10)")
		maxQueue  = fs.Int("max-queue", 0, "admitted-but-unfinished job bound before 429 (coordinator; 0 = 1024, negative disables)")
		dispatchN = fs.Int("dispatch-parallel", 0, "concurrent dispatches per sweep (coordinator; 0 = 16)")
		heartbeat = fs.Duration("heartbeat", 0, "worker heartbeat interval (coordinator; 0 = 1s)")

		// Worker role.
		coordURL  = fs.String("coordinator", "", "coordinator base URL to join (worker)")
		workerID  = fs.String("worker-id", "", "stable cluster identity (worker; default doppeld-<pid>)")
		advertise = fs.String("advertise", "", "base URL the coordinator dispatches to (worker; default http://<bound addr>)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		handler http.Handler
		// started runs after the listener is up (workers join the cluster
		// here, once the advertised address is real); shutdown runs after
		// the HTTP server has drained.
		started  func(ln net.Addr)
		shutdown func()
	)

	switch *role {
	case "single":
		met := sim.NewMetrics()
		eng := engine.New(engine.Options{
			Workers:    *workers,
			CacheSize:  *cacheSize,
			JobTimeout: *jobLimit,
			Metrics:    met,
		})
		handler = newServer(eng, met).handler()
		shutdown = eng.Close

	case "coordinator":
		met := sim.NewMetrics()
		var st *store.Store
		if *storePath != "" {
			var err error
			if st, err = store.Open(*storePath); err != nil {
				return fmt.Errorf("opening result store: %w", err)
			}
			sst := st.Stats()
			logf("doppeld: result store %s: %d results, %d bytes", *storePath, sst.Keys, sst.Bytes)
		}
		coord := cluster.NewCoordinator(cluster.Options{
			Store:             st,
			Metrics:           met,
			CacheSize:         *cacheSize,
			HeartbeatInterval: *heartbeat,
			MaxQueue:          *maxQueue,
			DispatchParallel:  *dispatchN,
			RateLimit:         *rateLimit,
			RateBurst:         *rateBurst,
			Logf:              logf,
		})
		handler = coord.Handler()
		shutdown = func() {
			coord.Close()
			if st != nil {
				if err := st.Close(); err != nil {
					logf("doppeld: closing store: %v", err)
				}
			}
		}

	case "worker":
		if *coordURL == "" {
			return errors.New("-role worker requires -coordinator")
		}
		met := sim.NewMetrics()
		eng := engine.New(engine.Options{
			Workers:    *workers,
			CacheSize:  *cacheSize,
			JobTimeout: *jobLimit,
			Metrics:    met,
		})
		id := *workerID
		if id == "" {
			id = fmt.Sprintf("doppeld-%d", os.Getpid())
		}
		// A worker is a full standalone doppeld plus the coordinator-facing
		// execute endpoint, so it stays useful for direct local queries.
		mux := http.NewServeMux()
		mux.Handle("/", newServer(eng, met).handler())
		mux.Handle("POST /internal/v1/execute", (&cluster.Worker{ID: id, Eng: eng}).Handler())
		handler = mux

		agentDone := make(chan struct{})
		agentCtx, stopAgent := context.WithCancel(context.Background())
		started = func(ln net.Addr) {
			adv := *advertise
			if adv == "" {
				adv = "http://" + advertiseHost(ln)
			}
			agent := &cluster.Agent{Coordinator: *coordURL, ID: id, Addr: adv, Logf: logf}
			go func() {
				defer close(agentDone)
				if err := agent.Run(agentCtx); err != nil {
					logf("doppeld: cluster agent: %v", err)
				}
			}()
		}
		shutdown = func() {
			// Deregister first: the ring must stop routing here before the
			// engine goes away. Run fires the goodbye on its own short
			// context once agentCtx is cancelled.
			stopAgent()
			select {
			case <-agentDone:
			case <-time.After(5 * time.Second):
				logf("doppeld: cluster agent did not deregister in time")
			}
			eng.Close()
		}

	default:
		return fmt.Errorf("unknown -role %q (want \"single\", \"coordinator\" or \"worker\")", *role)
	}

	hs := &http.Server{Handler: handler}

	// Listen explicitly (rather than ListenAndServe) so -addr :0 works:
	// the kernel-chosen port is in ln.Addr, and the log line below is the
	// contract scripts/smoke.sh and scripts/cluster-smoke.sh parse to find
	// the server.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logf("doppeld: listening on %s (role %s)", ln.Addr(), *role)
	if started != nil {
		started(ln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logf("doppeld: shutting down")
	// Shutdown drains in-flight requests, including streaming sweeps: SSE
	// and NDJSON responses run to their terminal event before the listener
	// reports closed.
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("doppeld: shutdown: %v", err)
	}
	if shutdown != nil {
		shutdown()
	}
	return nil
}

// advertiseHost turns a bound listen address into a dialable host:port —
// a wildcard listen (":8080", "0.0.0.0:...") advertises loopback, which is
// right for the local-cluster topology this serves; multi-host deployments
// pass -advertise explicitly.
func advertiseHost(ln net.Addr) string {
	host, port, err := net.SplitHostPort(ln.String())
	if err != nil {
		return ln.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return ln.String()
}
