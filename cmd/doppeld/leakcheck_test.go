package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"doppelganger/api"
)

// TestLeakcheckEndpoint runs a small contract sweep over one secure scheme
// and the unsafe baseline, and checks the matrix shape and the headline
// verdicts: dom satisfies the whole lattice, unsafe leaks under ct-spec
// and nothing weaker.
func TestLeakcheckEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/leakcheck",
		`{"schemes":["unsafe","dom"],"ap":"on","seeds":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var lc api.LeakcheckResponse
	if err := json.Unmarshal(body, &lc); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if lc.Schema != api.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", lc.Schema, api.SchemaVersion)
	}
	if lc.Seeds != 4 || len(lc.Matrix) != 2 {
		t.Fatalf("got %d seeds, %d rows; want 4 seeds, 2 rows", lc.Seeds, len(lc.Matrix))
	}
	rows := map[string]api.ContractRow{}
	for _, r := range lc.Matrix {
		rows[r.Config] = r
		if len(r.Cells) != 6 {
			t.Errorf("%s: %d cells, want the 6-clause lattice", r.Config, len(r.Cells))
		}
	}
	for _, c := range rows["dom+ap"].Cells {
		if c.Verdict != "satisfied" {
			t.Errorf("dom+ap/%s = %s, want satisfied", c.Clause, c.Verdict)
		}
	}
	for _, c := range rows["unsafe+ap"].Cells {
		want := "satisfied"
		if c.Clause == "ct-spec" {
			want = "leaked"
		}
		if c.Verdict != want {
			t.Errorf("unsafe+ap/%s = %s, want %s", c.Clause, c.Verdict, want)
		}
	}

	// The response is stored and retrievable like any other result.
	resp, body = getJSON(t, ts.URL+"/v1/results/"+lc.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stored result: status %d: %s", resp.StatusCode, body)
	}
}

// TestLeakcheckEndpointRejects exercises the request validation paths.
func TestLeakcheckEndpointRejects(t *testing.T) {
	ts := newTestServer(t)
	for _, body := range []string{
		`{"schemes":["no-such-scheme"]}`,
		`{"ap":"sideways"}`,
		`{"bogus_field":1}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/leakcheck", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not an api.Error", body, raw)
		}
	}
}

// TestLeakcheckSeedClamp: an oversized request is clamped, not refused.
func TestLeakcheckSeedClamp(t *testing.T) {
	if maxLeakcheckSeeds >= 1<<20 {
		t.Fatal("clamp unreasonably large")
	}
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/leakcheck",
		`{"schemes":["dom"],"ap":"off","seeds":1048576}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var lc api.LeakcheckResponse
	if err := json.Unmarshal(body, &lc); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if lc.Seeds != maxLeakcheckSeeds {
		t.Errorf("seeds = %d, want clamp %d", lc.Seeds, maxLeakcheckSeeds)
	}
}
