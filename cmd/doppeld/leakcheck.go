package main

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"

	"doppelganger/api"
	"doppelganger/internal/leakcheck"
	"doppelganger/internal/secure"
)

// Contract sweeps run 2 × seeds × configs full simulations in the request
// goroutine's worker pool, so the seed count is clamped server-side: a
// defaulted request stays interactive, and nobody turns the endpoint into
// a batch farm by accident.
const (
	defaultLeakcheckSeeds = 32
	maxLeakcheckSeeds     = 512
)

// handleLeakcheck evaluates the contract lattice over randomized
// differential gadget pairs and reports the per-scheme contract matrix:
// for each requested scheme × ±AP config, which observer clauses the
// scheme's executions stay indistinguishable under.
func (s *server) handleLeakcheck(w http.ResponseWriter, r *http.Request) {
	var req api.LeakcheckRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	schemeNames := req.Schemes
	if len(schemeNames) == 0 {
		schemeNames = []string{"unsafe", "nda-p", "stt", "dom"}
	}
	var aps []bool
	switch req.AP {
	case "", "both":
		aps = []bool{false, true}
	case "off":
		aps = []bool{false}
	case "on":
		aps = []bool{true}
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown ap %q (want \"both\", \"on\" or \"off\")", req.AP))
		return
	}
	var cfgs []leakcheck.Config
	for _, name := range schemeNames {
		scheme, err := secure.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		for _, ap := range aps {
			cfgs = append(cfgs, leakcheck.Config{Scheme: scheme, AP: ap})
		}
	}
	seeds := req.Seeds
	if seeds <= 0 {
		seeds = defaultLeakcheckSeeds
	}
	if seeds > maxLeakcheckSeeds {
		seeds = maxLeakcheckSeeds
	}

	results, err := leakcheck.ContractSweep(r.Context(), cfgs, req.FirstSeed, seeds, runtime.GOMAXPROCS(0))
	if err != nil {
		writeSimError(w, err)
		return
	}
	resp := api.LeakcheckResponse{
		Schema:    api.SchemaVersion,
		ID:        s.newID("leakcheck"),
		Seeds:     seeds,
		FirstSeed: req.FirstSeed,
	}
	for _, res := range results {
		row := api.ContractRow{Config: res.Config.String()}
		for _, c := range res.Cells {
			cell := api.ContractCell{Clause: c.Clause.String(), Leaks: c.Leaks, Components: c.Components}
			if c.Satisfied() {
				cell.Verdict = "satisfied"
			} else {
				cell.Verdict = "leaked"
				cell.FirstSeed = c.FirstSeed
			}
			row.Cells = append(row.Cells, cell)
		}
		for _, c := range res.Strongest() {
			row.Strongest = append(row.Strongest, c.String())
		}
		resp.Matrix = append(resp.Matrix, row)
	}
	s.store(resp.ID, resp)
	writeJSON(w, http.StatusOK, resp)
}
