package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doppelganger/api"
	"doppelganger/internal/engine"
	"doppelganger/internal/workload"
	"doppelganger/sim"
)

// maxStoredResults bounds the in-memory result store (FIFO eviction).
const maxStoredResults = 256

// defaultTraceEvents and maxTraceEvents bound the per-run trace ring for
// traced /v1/run requests: the response keeps the most recent events and
// reports how many older ones were dropped.
const (
	defaultTraceEvents = 4096
	maxTraceEvents     = 65536
)

// server is the doppeld HTTP API over one shared engine. All simulation
// work funnels through the engine, so concurrent requests share its worker
// pool, result cache and in-flight deduplication.
type server struct {
	eng   *engine.Engine
	met   *sim.Metrics
	start time.Time

	nextID atomic.Uint64
	runs   atomic.Uint64
	sweeps atomic.Uint64

	mu      sync.Mutex
	results map[string]any
	order   []string // insertion order, for FIFO eviction

	ckptMu    sync.Mutex
	ckpts     map[string]*sim.Checkpoint
	ckptOrder []string // insertion order, for FIFO eviction

	progMu   sync.Mutex
	programs map[progKey]*sim.Program
}

type progKey struct {
	name  string
	scale workload.Scale
}

// newServer wraps an engine and an optional metrics registry (nil disables
// the /metrics endpoint's simulator families; the endpoint itself always
// serves).
func newServer(eng *engine.Engine, met *sim.Metrics) *server {
	if met == nil {
		met = sim.NewMetrics()
	}
	return &server{
		eng:      eng,
		met:      met,
		start:    time.Now(),
		results:  make(map[string]any),
		ckpts:    make(map[string]*sim.Checkpoint),
		programs: make(map[progKey]*sim.Program),
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("POST /v1/leakcheck", s.handleLeakcheck)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpointCreate)
	mux.HandleFunc("POST /v1/checkpoint/import", s.handleCheckpointImport)
	mux.HandleFunc("GET /v1/checkpoint/{id}", s.handleCheckpointExport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// program returns the built program for a workload at a scale, memoized:
// program images are immutable and deterministic, so every request for the
// same (workload, scale) shares one image.
func (s *server) program(name string, scale workload.Scale) (*sim.Program, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q; known: %s",
			name, strings.Join(workload.Names(), ", "))
	}
	k := progKey{name, scale}
	s.progMu.Lock()
	defer s.progMu.Unlock()
	if p, ok := s.programs[k]; ok {
		return p, nil
	}
	p := w.Build(scale)
	s.programs[k] = p
	return p, nil
}

func parseScale(name string) (workload.Scale, string, error) {
	switch name {
	case "", "full":
		return workload.ScaleFull, "full", nil
	case "test":
		return workload.ScaleTest, "test", nil
	default:
		return 0, "", fmt.Errorf("unknown scale %q (want \"test\" or \"full\")", name)
	}
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Workload == "" && req.Checkpoint == "" {
		writeError(w, http.StatusBadRequest, "missing \"workload\"")
		return
	}
	scale, scaleName, err := parseScale(req.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	schemeName := req.Scheme
	if schemeName == "" {
		schemeName = "unsafe"
	}
	scheme, err := sim.ParseScheme(schemeName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var ck *sim.Checkpoint
	if req.Checkpoint != "" {
		if ck = s.checkpoint(req.Checkpoint); ck == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no stored checkpoint %q", req.Checkpoint))
			return
		}
	}
	var prog *sim.Program
	if req.Workload != "" {
		prog, err = s.program(req.Workload, scale)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if ck != nil {
			if err := ck.CompatibleWith(prog); err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
	} else {
		// Checkpoint-only request: run the program embedded in the
		// checkpoint (its captured state supersedes any initial image).
		prog = ck.Program()
		scaleName = ""
	}
	cfg := sim.Config{
		Scheme:            scheme,
		AddressPrediction: req.AP,
		MaxInsts:          req.MaxInsts,
		MaxCycles:         req.MaxCycles,
	}
	var (
		res  sim.Result
		ring *sim.RingSink
	)
	if req.Trace {
		// A traced run carries per-run state the shared result cache cannot
		// hold, so it bypasses the engine and runs in the request goroutine
		// (metrics still flow into the shared registry).
		limit := req.TraceEvents
		if limit <= 0 {
			limit = defaultTraceEvents
		}
		if limit > maxTraceEvents {
			limit = maxTraceEvents
		}
		ring = sim.NewRingSink(limit)
		// Surface ring evictions on /metrics: a truncated trace response
		// (EventsDropped > 0) is easy to miss client-side, the counter is not.
		ring.AttachMetrics(s.met)
		ctx := r.Context()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		if ck != nil {
			res, err = sim.RunFromCheckpoint(ctx, prog, cfg, ck,
				sim.WithTracer(ring), sim.WithMetrics(s.met))
		} else {
			res, err = sim.RunContext(ctx, prog, cfg,
				sim.WithTracer(ring), sim.WithMetrics(s.met))
		}
	} else {
		res, err = s.eng.Submit(r.Context(), engine.Job{
			Program:    prog,
			Config:     cfg,
			Checkpoint: ck,
			Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		})
	}
	if err != nil {
		writeSimError(w, err)
		return
	}
	s.runs.Add(1)
	workloadName := req.Workload
	if workloadName == "" {
		workloadName = prog.Name
	}
	resp := api.RunResponse{
		Schema:   api.SchemaVersion,
		ID:       s.newID("run"),
		Workload: workloadName,
		Scale:    scaleName,
		Scheme:   scheme.String(),
		AP:       req.AP,
		Result:   res,
	}
	if ring != nil {
		resp.Events = ring.Events()
		resp.EventsDropped = ring.Dropped()
	}
	s.store(resp.ID, resp)
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the shared registry in Prometheus text exposition
// format: engine activity plus the simulator families (pipeline histograms,
// cache hit/miss counters, end-of-run totals) of every run executed so far.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WritePrometheus(w)
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale, scaleName, err := parseScale(req.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	schemeNames := req.Schemes
	if len(schemeNames) == 0 {
		schemeNames = []string{"unsafe", "nda-p", "stt", "dom"}
	}
	schemes := make([]sim.Scheme, len(schemeNames))
	for i, n := range schemeNames {
		if schemes[i], err = sim.ParseScheme(n); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	var aps []bool
	switch req.AP {
	case "", "both":
		aps = []bool{false, true}
	case "off":
		aps = []bool{false}
	case "on":
		aps = []bool{true}
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown ap %q (want \"both\", \"on\" or \"off\")", req.AP))
		return
	}

	var jobs []engine.Job
	var cells []api.SweepCell
	for _, name := range names {
		prog, err := s.program(name, scale)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		for i, scheme := range schemes {
			for _, ap := range aps {
				cells = append(cells, api.SweepCell{Workload: name, Scheme: schemeNames[i], AP: ap})
				jobs = append(jobs, engine.Job{
					Program: prog,
					Config: sim.Config{
						Scheme:            scheme,
						AddressPrediction: ap,
						MaxInsts:          req.MaxInsts,
						MaxCycles:         req.MaxCycles,
					},
				})
			}
		}
	}
	results, err := s.eng.RunBatch(r.Context(), jobs, nil)
	if err != nil {
		writeSimError(w, err)
		return
	}
	base := make(map[string]uint64) // workload -> unsafe no-AP cycles
	for i := range cells {
		cells[i].Result = results[i]
		if jobs[i].Config.Scheme == sim.Unsafe && !cells[i].AP {
			base[cells[i].Workload] = results[i].Cycles
		}
	}
	for i := range cells {
		if b, ok := base[cells[i].Workload]; ok && cells[i].Result.Cycles > 0 {
			cells[i].NormIPC = float64(b) / float64(cells[i].Result.Cycles)
		}
	}
	s.sweeps.Add(1)
	resp := api.SweepResponse{Schema: api.SchemaVersion, ID: s.newID("sweep"), Scale: scaleName, Cells: cells}
	s.store(resp.ID, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	resp, ok := s.results[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no stored result %q", id))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	stored := len(s.results)
	s.mu.Unlock()
	s.ckptMu.Lock()
	ckpts := len(s.ckpts)
	s.ckptMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"engine": s.eng.Stats(),
		"server": map[string]any{
			"uptime_ms":          time.Since(s.start).Milliseconds(),
			"runs":               s.runs.Load(),
			"sweeps":             s.sweeps.Load(),
			"results_stored":     stored,
			"checkpoints_stored": ckpts,
		},
	})
}

// newID mints a store identifier like "run-7".
func (s *server) newID(kind string) string {
	return fmt.Sprintf("%s-%d", kind, s.nextID.Add(1))
}

// store retains a response for GET /v1/results/{id}, evicting the oldest
// beyond the cap.
func (s *server) store(id string, resp any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[id] = resp
	s.order = append(s.order, id)
	for len(s.order) > maxStoredResults {
		delete(s.results, s.order[0])
		s.order = s.order[1:]
	}
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, api.Error{Error: msg})
}

// writeSimError maps an engine failure to a status: client cancellations
// surface as 499-style 400s, everything else is a 500.
func writeSimError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusBadRequest
	}
	writeError(w, code, err.Error())
}
