package main

import "doppelganger/sim"

// RunRequest asks for one simulation: a suite workload under one
// configuration.
type RunRequest struct {
	// Workload is a suite workload name (see doppelsim -list).
	Workload string `json:"workload"`
	// Scale is "test" or "full" (default "full").
	Scale string `json:"scale,omitempty"`
	// Scheme is the secure speculation scheme name (default "unsafe").
	Scheme string `json:"scheme,omitempty"`
	// AP enables doppelganger loads.
	AP bool `json:"ap,omitempty"`
	// MaxInsts bounds committed instructions (0 = run to halt).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// MaxCycles bounds simulated cycles (0 = default budget).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TimeoutMS bounds the run's wall-clock time in milliseconds
	// (0 = the server's default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace attaches a trace sink to the run and returns the captured
	// events in the response. Traced runs bypass the result cache.
	Trace bool `json:"trace,omitempty"`
	// TraceEvents caps how many of the most recent events are kept
	// (0 = a server default; the server also enforces a hard ceiling).
	TraceEvents int `json:"trace_events,omitempty"`
}

// RunResponse is one completed simulation.
type RunResponse struct {
	// ID retrieves this response later via GET /v1/results/{id}.
	ID       string     `json:"id"`
	Workload string     `json:"workload"`
	Scale    string     `json:"scale"`
	Scheme   string     `json:"scheme"`
	AP       bool       `json:"ap"`
	Result   sim.Result `json:"result"`
	// Events holds the run's captured trace (most recent first-to-last)
	// when the request set "trace"; EventsDropped counts older events that
	// fell out of the bounded ring.
	Events        []sim.TraceEvent `json:"events,omitempty"`
	EventsDropped uint64           `json:"events_dropped,omitempty"`
}

// SweepRequest asks for a workload × scheme × ±AP matrix.
type SweepRequest struct {
	// Workloads restricts the sweep (empty = the full suite).
	Workloads []string `json:"workloads,omitempty"`
	// Schemes restricts the sweep by name (empty = unsafe + the paper's
	// three schemes).
	Schemes []string `json:"schemes,omitempty"`
	// AP is "both" (default), "on", or "off".
	AP string `json:"ap,omitempty"`
	// Scale is "test" or "full" (default "full").
	Scale string `json:"scale,omitempty"`
	// MaxInsts bounds committed instructions per cell.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// MaxCycles bounds simulated cycles per cell.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// SweepCell is one cell of a sweep.
type SweepCell struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	AP       bool   `json:"ap"`
	// NormIPC is the cell's IPC normalized to the same workload's unsafe
	// no-AP baseline; present only when the sweep includes that baseline.
	NormIPC float64    `json:"norm_ipc,omitempty"`
	Result  sim.Result `json:"result"`
}

// SweepResponse is a completed sweep in matrix order (workload, scheme,
// then -AP/+AP).
type SweepResponse struct {
	ID    string      `json:"id"`
	Scale string      `json:"scale"`
	Cells []SweepCell `json:"cells"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
