package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"doppelganger/api"
	"doppelganger/internal/engine"
	"doppelganger/sim"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(newServer(eng, nil).handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestRunRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/run",
		`{"workload":"stream","scheme":"dom","ap":true,"scale":"test"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var run api.RunResponse
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if run.ID == "" || run.Workload != "stream" || run.Scheme != "dom" || !run.AP {
		t.Errorf("unexpected response fields: %+v", run)
	}
	if run.Result.Cycles == 0 || run.Result.Insts == 0 {
		t.Errorf("empty result: %+v", run.Result)
	}

	// The stored result must round-trip byte-identically.
	resp2, stored := getJSON(t, ts.URL+"/v1/results/"+run.ID)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("results status %d: %s", resp2.StatusCode, stored)
	}
	if !bytes.Equal(body, stored) {
		t.Error("GET /v1/results body differs from the POST /v1/run body")
	}
}

func TestSweepRoundTripAndCacheHits(t *testing.T) {
	ts := newTestServer(t)
	req := `{"workloads":["matrix_blocked"],"schemes":["unsafe","dom"],"scale":"test"}`
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sweep api.SweepResponse
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if len(sweep.Cells) != 4 { // 1 workload x 2 schemes x 2 AP
		t.Fatalf("cells = %d, want 4", len(sweep.Cells))
	}
	if c := sweep.Cells[0]; c.Workload != "matrix_blocked" || c.Scheme != "unsafe" || c.AP {
		t.Errorf("first cell out of matrix order: %+v", c)
	}
	for _, c := range sweep.Cells {
		if c.Result.Cycles == 0 {
			t.Errorf("cell %s/%s/ap=%v is empty", c.Workload, c.Scheme, c.AP)
		}
		if c.NormIPC <= 0 {
			t.Errorf("cell %s/%s/ap=%v missing norm_ipc", c.Workload, c.Scheme, c.AP)
		}
	}
	if base := sweep.Cells[0].NormIPC; base != 1.0 {
		t.Errorf("baseline norm_ipc = %v, want 1", base)
	}

	// An identical sweep must be served from the engine's result cache.
	if resp, body := postJSON(t, ts.URL+"/v1/sweep", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat sweep status %d: %s", resp.StatusCode, body)
	}
	_, statsBody := getJSON(t, ts.URL+"/stats")
	var stats struct {
		Engine engine.Stats `json:"engine"`
		Server struct {
			Runs   uint64 `json:"runs"`
			Sweeps uint64 `json:"sweeps"`
		} `json:"server"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, statsBody)
	}
	if stats.Engine.CacheHits == 0 {
		t.Errorf("repeated sweep reported no cache hits: %+v", stats.Engine)
	}
	if stats.Engine.JobsRun != 4 {
		t.Errorf("jobs run = %d, want 4 (second sweep fully cached)", stats.Engine.JobsRun)
	}
	if stats.Server.Sweeps != 2 {
		t.Errorf("sweeps = %d, want 2", stats.Server.Sweeps)
	}
}

func TestUnknownWorkloadIs400(t *testing.T) {
	ts := newTestServer(t)
	for _, ep := range []string{"/v1/run", "/v1/sweep"} {
		body := fmt.Sprintf(`{"workload%s":["nope"],"scale":"test"}`, "s")
		if ep == "/v1/run" {
			body = `{"workload":"nope","scale":"test"}`
		}
		resp, raw := postJSON(t, ts.URL+ep, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", ep, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content type = %q", ep, ct)
		}
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, "nope") {
			t.Errorf("%s error body = %s", ep, raw)
		}
	}
}

func TestBadRequestsAre400(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct{ ep, body string }{
		{"/v1/run", `{"workload":"stream","scheme":"bogus","scale":"test"}`},
		{"/v1/run", `{"workload":"stream","scale":"huge"}`},
		{"/v1/run", `{"typo_field":1}`},
		{"/v1/run", `{`},
		{"/v1/sweep", `{"ap":"maybe","scale":"test"}`},
	}
	for _, c := range cases {
		resp, raw := postJSON(t, ts.URL+c.ep, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status = %d, want 400 (%s)", c.ep, c.body, resp.StatusCode, raw)
		}
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s %s: not a JSON error body: %s", c.ep, c.body, raw)
		}
	}
}

func TestResultsUnknownIDIs404(t *testing.T) {
	ts := newTestServer(t)
	resp, raw := getJSON(t, ts.URL+"/v1/results/run-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	var e api.Error
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Errorf("not a JSON error body: %s", raw)
	}
}

// TestMetricsEndpoint mirrors main.go's wiring — one registry shared by the
// engine and the server — and checks an executed run surfaces simulator and
// engine metric families on /metrics.
func TestMetricsEndpoint(t *testing.T) {
	met := sim.NewMetrics()
	eng := engine.New(engine.Options{Workers: 2, Metrics: met})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(newServer(eng, met).handler())
	t.Cleanup(ts.Close)

	if resp, body := postJSON(t, ts.URL+"/v1/run",
		`{"workload":"stream","scheme":"dom","ap":true,"scale":"test"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, body)
	}

	resp, raw := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	out := string(raw)
	for _, family := range []string{
		"sim_cycles_total",
		"sim_cache_hits_total",
		"sim_shadow_lifetime_cycles",
		"engine_jobs_total",
		"engine_cache_misses_total",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
}

// TestTracedRun checks trace:true returns per-run events and preserves the
// result, and that the event budget is clamped and reported.
func TestTracedRun(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/run",
		`{"workload":"stream","scheme":"dom","ap":true,"scale":"test","trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var run api.RunResponse
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if len(run.Events) == 0 {
		t.Fatal("traced run returned no events")
	}
	if run.Result.Cycles == 0 || run.Result.Checksum == 0 {
		t.Errorf("traced run lost its result: %+v", run.Result)
	}
	for i, e := range run.Events {
		if e.Kind.String() == "" {
			t.Fatalf("event %d has no kind: %+v", i, e)
		}
	}

	// A tight budget keeps only the newest events and reports the drop.
	resp, body = postJSON(t, ts.URL+"/v1/run",
		`{"workload":"stream","scheme":"dom","ap":true,"scale":"test","trace":true,"trace_events":16}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var small api.RunResponse
	if err := json.Unmarshal(body, &small); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if len(small.Events) > 16 {
		t.Errorf("events = %d, want <= 16", len(small.Events))
	}
	if small.EventsDropped == 0 {
		t.Error("tight budget reported no dropped events")
	}
	if small.Result.Checksum != run.Result.Checksum {
		t.Error("trace budget changed the architectural result")
	}
}

func TestHealthzShape(t *testing.T) {
	ts := newTestServer(t)
	resp, raw := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h struct {
		Status   string `json:"status"`
		UptimeMS *int64 `json:"uptime_ms"`
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatalf("bad healthz JSON: %v", err)
	}
	if h.Status != "ok" || h.UptimeMS == nil {
		t.Errorf("healthz = %s", raw)
	}
}

func TestStatsShape(t *testing.T) {
	ts := newTestServer(t)
	_, raw := getJSON(t, ts.URL+"/stats")
	var st struct {
		Engine *engine.Stats  `json:"engine"`
		Server map[string]any `json:"server"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, raw)
	}
	if st.Engine == nil || st.Engine.Workers != 4 {
		t.Errorf("engine stats missing or wrong workers: %s", raw)
	}
	for _, key := range []string{"uptime_ms", "runs", "sweeps", "results_stored"} {
		if _, ok := st.Server[key]; !ok {
			t.Errorf("server stats missing %q: %s", key, raw)
		}
	}
}
