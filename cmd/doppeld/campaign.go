package main

import (
	"fmt"
	"net/http"
	"strings"

	"doppelganger/api"
	"doppelganger/internal/campaign"
	"doppelganger/internal/leakcheck"
	"doppelganger/internal/secure"
)

// Campaign budgets are clamped like leakcheck seeds: each evaluation is
// two full simulations per config, so a defaulted request stays
// interactive and the ceiling keeps the endpoint out of batch-farm
// territory (persistent-corpus campaigns belong in cmd/leakcheck).
const (
	defaultCampaignBudget = 64
	maxCampaignBudget     = 1024
)

// clampCampaignBudget applies the default and the ceiling to a requested
// budget; oversized requests are clamped, not refused.
func clampCampaignBudget(budget int) int {
	if budget <= 0 {
		budget = defaultCampaignBudget
	}
	if budget > maxCampaignBudget {
		budget = maxCampaignBudget
	}
	return budget
}

// handleCampaign runs a coverage-guided leakcheck campaign on the server's
// shared engine and reports every minimized leak reproducer it found. The
// corpus is in-memory per request; a fixed seed makes the response
// reproducible.
func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req api.CampaignRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	schemeNames := req.Schemes
	if len(schemeNames) == 0 {
		schemeNames = []string{"unsafe", "nda-p", "stt", "dom"}
	}
	var aps []bool
	switch req.AP {
	case "", "both":
		aps = []bool{false, true}
	case "off":
		aps = []bool{false}
	case "on":
		aps = []bool{true}
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown ap %q (want \"both\", \"on\" or \"off\")", req.AP))
		return
	}
	var cfgs []leakcheck.Config
	for _, name := range schemeNames {
		scheme, err := secure.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		for _, ap := range aps {
			cfgs = append(cfgs, leakcheck.Config{Scheme: scheme, AP: ap})
		}
	}
	budget := clampCampaignBudget(req.Budget)

	sum, err := campaign.Run(r.Context(), campaign.Options{
		Configs: cfgs,
		Budget:  budget,
		Seed:    req.Seed,
		Engine:  s.eng,
		Blind:   req.Blind,
	})
	if err != nil {
		writeSimError(w, err)
		return
	}
	resp := api.CampaignResponse{
		Schema:   api.SchemaVersion,
		ID:       s.newID("campaign"),
		Budget:   budget,
		Seed:     req.Seed,
		Evals:    sum.Evals,
		Pairs:    sum.Pairs,
		Cells:    sum.Cells,
		NewLeaks: sum.NewLeaks,
		DupLeaks: sum.DupLeaks,
	}
	for _, lk := range sum.Leaks {
		resp.Leaks = append(resp.Leaks, api.CampaignLeak{
			Config:     lk.Config.String(),
			Params:     lk.Params.String(),
			Components: lk.Components,
			Clauses:    lk.Clauses,
			Key:        lk.Key,
		})
	}
	s.store(resp.ID, resp)
	writeJSON(w, http.StatusOK, resp)
}
