package main

import (
	"strings"
	"testing"

	"doppelganger/internal/pipeline"
	"doppelganger/sim"
)

func TestBuildCoreConfigValid(t *testing.T) {
	cases := []struct {
		apKind string
		want   pipeline.AddressPredictorKind
	}{
		{"stride", sim.PredictorStride},
		{"context", sim.PredictorContext},
		{"hybrid", sim.PredictorHybrid},
	}
	for _, c := range cases {
		cc, err := buildCoreConfig(false, c.apKind, "bimodal")
		if err != nil {
			t.Fatalf("buildCoreConfig(%q) failed: %v", c.apKind, err)
		}
		if cc.AddressPredictorKind != c.want {
			t.Errorf("buildCoreConfig(%q).AddressPredictorKind = %v, want %v",
				c.apKind, cc.AddressPredictorKind, c.want)
		}
	}
	cc, err := buildCoreConfig(true, "stride", "gshare")
	if err != nil {
		t.Fatalf("buildCoreConfig(gshare) failed: %v", err)
	}
	if cc.BranchPredictorKind != sim.BranchGShare {
		t.Errorf("BranchPredictorKind = %v, want gshare", cc.BranchPredictorKind)
	}
	if !cc.ValuePrediction {
		t.Error("ValuePrediction not carried through")
	}
}

func TestBuildCoreConfigRejectsUnknown(t *testing.T) {
	if _, err := buildCoreConfig(false, "nope", "bimodal"); err == nil {
		t.Error("unknown predictor accepted")
	} else if !strings.Contains(err.Error(), "stride, context, hybrid") {
		t.Errorf("predictor error should list valid choices, got %q", err)
	}
	if _, err := buildCoreConfig(false, "stride", "nope"); err == nil {
		t.Error("unknown branch predictor accepted")
	} else if !strings.Contains(err.Error(), "bimodal, gshare") {
		t.Errorf("branch error should list valid choices, got %q", err)
	}
}

func TestSchemeNamesListsExtensions(t *testing.T) {
	names := schemeNames()
	for _, want := range []string{"unsafe", "nda-p", "stt", "dom", "nda-s", "stt-spectre", "cleanup"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("schemeNames() = %v, missing %q", names, want)
		}
	}
}

func TestValidateCheckpointFlags(t *testing.T) {
	ok := func(name string, err error) {
		t.Helper()
		if err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	bad := func(name string, err error, wantSub string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s accepted", name)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	ok("plain run", validateCheckpointFlags("", "", 0, false, "", "", false))
	ok("snapshot", validateCheckpointFlags("w.ckpt", "", 1000, false, "", "", false))
	ok("restore", validateCheckpointFlags("", "w.ckpt", 0, false, "", "", false))
	ok("restore with trace", validateCheckpointFlags("", "w.ckpt", 0, false, "all", "-", false))

	bad("out+in", validateCheckpointFlags("a", "b", 1000, false, "", "", false), "mutually exclusive")
	bad("out without warmup", validateCheckpointFlags("a", "", 0, false, "", "", false), "-warmup-insts")
	bad("out+all", validateCheckpointFlags("a", "", 1000, true, "", "", false), "-all")
	bad("out+trace", validateCheckpointFlags("a", "", 1000, false, "all", "", false), "-trace")
	bad("out+metrics", validateCheckpointFlags("a", "", 1000, false, "", "-", false), "-metrics")
	bad("out+verify", validateCheckpointFlags("a", "", 1000, false, "", "", true), "-verify")
	bad("warmup alone", validateCheckpointFlags("", "", 1000, false, "", "", false), "-checkpoint-out")
	bad("in+all", validateCheckpointFlags("", "b", 0, true, "", "", false), "-all")
	bad("in+verify", validateCheckpointFlags("", "b", 0, false, "", "", true), "-verify")
}
