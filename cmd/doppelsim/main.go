// Command doppelsim runs one program on the simulated core and reports
// detailed statistics.
//
//	doppelsim -workload stream -scheme dom -ap            # suite benchmark
//	doppelsim -file prog.asm -scheme stt                  # assembly file
//	doppelsim -workload pointer_chase -all                # all schemes +-AP
//	doppelsim -workload stream -all -parallel 8           # comparison on 8 workers
//	doppelsim -workload stream -scheme dom -json          # machine-readable result
//	doppelsim -list                                       # show workloads
//	doppelsim -workload stream -trace 1000:1200           # JSONL events for a cycle window
//	doppelsim -workload stream -trace all -trace-out t.jsonl
//	doppelsim -workload stream -scheme dom -metrics -     # Prometheus text on stdout
//	doppelsim -workload stream -warmup-insts 100000 -checkpoint-out warm.ckpt
//	doppelsim -checkpoint-in warm.ckpt -scheme stt -ap    # fork the warm state
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"doppelganger/internal/engine"
	"doppelganger/sim"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "run a suite workload by name (see -list)")
		file         = flag.String("file", "", "run an assembly file")
		schemeName   = flag.String("scheme", "unsafe", "secure speculation scheme: unsafe, nda-p, stt, dom, nda-s, stt-spectre, cleanup")
		ap           = flag.Bool("ap", false, "enable doppelganger loads (address prediction)")
		vp           = flag.Bool("vp", false, "enable DoM value prediction instead of doppelgangers")
		apKind       = flag.String("predictor", "stride", "address predictor: stride, context, hybrid")
		bpKind       = flag.String("branch", "bimodal", "branch predictor: bimodal, gshare")
		all          = flag.Bool("all", false, "run every scheme with and without AP and compare")
		extensions   = flag.Bool("extensions", false, "with -all, include the nda-s and stt-spectre variants")
		scaleName    = flag.String("scale", "full", "workload scale: full or test")
		maxInsts     = flag.Uint64("maxinsts", 0, "stop after committing this many instructions (0 = run to halt)")
		maxCycles    = flag.Uint64("maxcycles", 0, "cycle budget (0 = default)")
		trace        = flag.String("trace", "", "emit JSONL trace events: a cycle window as from:to, or \"all\"")
		traceOut     = flag.String("trace-out", "-", "trace destination file (\"-\" = stdout)")
		metricsOut   = flag.String("metrics", "", "write run metrics in Prometheus text format to this file (\"-\" = stdout)")
		verify       = flag.Bool("verify", false, "cross-check the final state against the reference interpreter")
		list         = flag.Bool("list", false, "list suite workloads and exit")
		parallel     = flag.Int("parallel", 0, "with -all, engine worker-pool size (0 = one per CPU)")
		jsonOut      = flag.Bool("json", false, "emit results as JSON")
		ckptOut      = flag.String("checkpoint-out", "", "warm up, then write a checkpoint file and exit (requires -warmup-insts)")
		ckptIn       = flag.String("checkpoint-in", "", "warm-start from a checkpoint file instead of the program's initial state")
		warmupInsts  = flag.Uint64("warmup-insts", 0, "with -checkpoint-out, commit this many instructions before snapshotting")
	)
	flag.Parse()

	if *list {
		for _, w := range sim.Workloads() {
			fmt.Printf("%-16s stands in for %s\n    %s\n", w.Name, w.Spec, w.Description)
		}
		return
	}

	// Validate every flag before doing any work, so a typo'd or
	// contradictory invocation fails loudly instead of silently running
	// something other than what was asked for (-all used to ignore -vp,
	// -predictor and -branch entirely).
	if *ap && *vp {
		fail(fmt.Errorf("-ap and -vp are mutually exclusive: doppelganger loads and DoM value prediction replace each other"))
	}
	if *all && *vp {
		fail(fmt.Errorf("-vp cannot be combined with -all: the comparison table contrasts doppelganger loads, not value prediction; run -scheme dom -vp instead"))
	}
	if err := validateCheckpointFlags(*ckptOut, *ckptIn, *warmupInsts, *all, *trace, *metricsOut, *verify); err != nil {
		fail(err)
	}
	scheme, err := sim.ParseScheme(*schemeName)
	if err != nil {
		fail(fmt.Errorf("unknown scheme %q: valid schemes are %s", *schemeName, strings.Join(schemeNames(), ", ")))
	}
	cc, err := buildCoreConfig(*vp, *apKind, *bpKind)
	if err != nil {
		fail(err)
	}

	// With -checkpoint-in the program is optional: the checkpoint embeds
	// the one it was taken of, and naming a program here only adds a
	// compatibility cross-check.
	var prog *sim.Program
	if *ckptIn == "" || *workloadName != "" || *file != "" {
		prog, err = loadProgram(*workloadName, *file, *scaleName)
		if err != nil {
			fail(err)
		}
	}

	if *all {
		runAll(prog, &cc, *maxInsts, *maxCycles, *extensions, *parallel, *jsonOut)
		return
	}

	cfg := sim.Config{
		Scheme:            scheme,
		AddressPrediction: *ap,
		MaxInsts:          *maxInsts,
		MaxCycles:         *maxCycles,
		Core:              &cc,
	}

	if *ckptOut != "" {
		ck, err := sim.Snapshot(prog, cfg, *warmupInsts)
		if err != nil {
			fail(err)
		}
		if err := ck.WriteFile(*ckptOut); err != nil {
			fail(err)
		}
		st := ck.State()
		fmt.Printf("checkpoint written  %s\n", *ckptOut)
		fmt.Printf("program             %s\n", prog.Name)
		fmt.Printf("warmed under        %v (doppelganger loads: %v)\n", cfg.Scheme, cfg.AddressPrediction)
		fmt.Printf("committed / cycle   %d insts / %d\n", st.Stats.Committed, st.Cycle)
		fmt.Printf("digest              %s\n", ck.Digest())
		return
	}

	var opts []sim.RunOption
	if *trace != "" {
		w, closeTrace, err := openOut(*traceOut)
		if err != nil {
			fail(err)
		}
		defer closeTrace()
		opts = append(opts, sim.WithTracer(sim.NewJSONLSink(w)))
		if *trace != "all" {
			var from, to uint64
			if _, err := fmt.Sscanf(*trace, "%d:%d", &from, &to); err != nil {
				fail(fmt.Errorf("bad -trace %q, want from:to or \"all\"", *trace))
			}
			opts = append(opts, sim.WithTraceWindow(from, to))
		}
	}
	var met *sim.Metrics
	if *metricsOut != "" {
		met = sim.NewMetrics()
		opts = append(opts, sim.WithMetrics(met))
	}
	var res sim.Result
	if *ckptIn != "" {
		ck, err := sim.ReadCheckpoint(*ckptIn)
		if err != nil {
			fail(err)
		}
		res, err = sim.RunFromCheckpoint(context.Background(), prog, cfg, ck, opts...)
		if err != nil {
			fail(err)
		}
	} else {
		res, err = sim.RunContext(context.Background(), prog, cfg, opts...)
		if err != nil {
			fail(err)
		}
	}
	if met != nil {
		w, closeMetrics, err := openOut(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := met.WritePrometheus(w); err != nil {
			fail(err)
		}
		closeMetrics()
	}
	if *verify {
		ref := sim.Interpret(prog, 500_000_000)
		if res.Checksum != ref.Checksum() {
			fail(fmt.Errorf("verification FAILED: core state differs from the reference interpreter"))
		}
		fmt.Println("verification OK: architectural state matches the reference interpreter")
	}
	if *jsonOut {
		printJSON(struct {
			Scheme string     `json:"scheme"`
			AP     bool       `json:"ap"`
			Result sim.Result `json:"result"`
		}{cfg.Scheme.String(), cfg.AddressPrediction, res})
		return
	}
	printResult(res)
}

// validateCheckpointFlags rejects contradictory checkpoint invocations up
// front, so a bad combination fails with a usage message instead of
// silently running something other than what was asked for.
func validateCheckpointFlags(ckptOut, ckptIn string, warmupInsts uint64, all bool, trace, metricsOut string, verify bool) error {
	if ckptOut != "" && ckptIn != "" {
		return fmt.Errorf("-checkpoint-out and -checkpoint-in are mutually exclusive: one run either takes a snapshot or restores one")
	}
	if ckptOut != "" {
		if warmupInsts == 0 {
			return fmt.Errorf("-checkpoint-out requires -warmup-insts: say how far to warm before snapshotting")
		}
		if all || trace != "" || metricsOut != "" || verify {
			return fmt.Errorf("-checkpoint-out runs only the warmup and cannot be combined with -all, -trace, -metrics or -verify; take the snapshot first, then run from it with -checkpoint-in")
		}
	}
	if warmupInsts > 0 && ckptOut == "" {
		return fmt.Errorf("-warmup-insts only configures -checkpoint-out; to bound a normal run use -maxinsts")
	}
	if ckptIn != "" {
		if all {
			return fmt.Errorf("-checkpoint-in cannot be combined with -all yet; run each scheme separately from the same checkpoint")
		}
		if verify {
			return fmt.Errorf("-checkpoint-in cannot be combined with -verify: the reference interpreter replays the program's initial state, which the checkpoint supersedes")
		}
	}
	return nil
}

// buildCoreConfig assembles the core configuration from the predictor
// flags, rejecting unknown names with the valid choices spelled out.
func buildCoreConfig(vp bool, apKind, bpKind string) (sim.CoreConfig, error) {
	cc := sim.DefaultCoreConfig()
	cc.ValuePrediction = vp
	switch apKind {
	case "stride":
		cc.AddressPredictorKind = sim.PredictorStride
	case "context":
		cc.AddressPredictorKind = sim.PredictorContext
	case "hybrid":
		cc.AddressPredictorKind = sim.PredictorHybrid
	default:
		return cc, fmt.Errorf("unknown predictor %q: valid predictors are stride, context, hybrid", apKind)
	}
	switch bpKind {
	case "bimodal":
		cc.BranchPredictorKind = sim.BranchBimodal
	case "gshare":
		cc.BranchPredictorKind = sim.BranchGShare
	default:
		return cc, fmt.Errorf("unknown branch predictor %q: valid branch predictors are bimodal, gshare", bpKind)
	}
	return cc, nil
}

// schemeNames lists every accepted -scheme value, extensions included.
func schemeNames() []string {
	all := sim.AllSchemes()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.String()
	}
	return names
}

// openOut resolves an output destination: "-" is stdout (with a no-op
// closer), anything else is created as a file.
func openOut(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// printJSON writes any value as indented JSON on stdout.
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func loadProgram(workloadName, file, scaleName string) (*sim.Program, error) {
	switch {
	case workloadName != "" && file != "":
		return nil, fmt.Errorf("use either -workload or -file, not both")
	case workloadName != "":
		w, ok := sim.WorkloadByName(workloadName)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q; known: %s",
				workloadName, strings.Join(sim.WorkloadNames(), ", "))
		}
		scale := sim.ScaleFull
		switch scaleName {
		case "full":
		case "test":
			scale = sim.ScaleTest
		default:
			return nil, fmt.Errorf("unknown scale %q", scaleName)
		}
		return w.Build(scale), nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return sim.Assemble(file, string(src))
	default:
		return nil, fmt.Errorf("nothing to run: pass -workload or -file (or -list)")
	}
}

// runAll compares every scheme with and without address prediction. The
// cells execute concurrently on an engine worker pool; the comparison table
// streams in scheme order regardless of completion order (the engine's
// batch callbacks are ordered), so output is identical at any parallelism.
func runAll(prog *sim.Program, cc *sim.CoreConfig, maxInsts, maxCycles uint64, extensions bool, parallel int, jsonOut bool) {
	schemes := sim.Schemes()
	if extensions {
		schemes = sim.AllSchemes()
	}
	var jobs []engine.Job
	for _, scheme := range schemes {
		for _, ap := range []bool{false, true} {
			jobs = append(jobs, engine.Job{Program: prog, Config: sim.Config{
				Scheme: scheme, AddressPrediction: ap,
				MaxInsts: maxInsts, MaxCycles: maxCycles,
				Core: cc, // shared read-only; NewCore copies it per run
			}})
		}
	}
	eng := engine.New(engine.Options{Workers: parallel})
	defer eng.Close()

	if jsonOut {
		results, err := eng.RunBatch(context.Background(), jobs, nil)
		if err != nil {
			fail(err)
		}
		type cell struct {
			Scheme string     `json:"scheme"`
			AP     bool       `json:"ap"`
			Result sim.Result `json:"result"`
		}
		cells := make([]cell, len(results))
		for i, res := range results {
			cells[i] = cell{jobs[i].Config.Scheme.String(), jobs[i].Config.AddressPrediction, res}
		}
		printJSON(cells)
		return
	}

	fmt.Printf("%-12s %-6s %12s %8s %10s %10s %10s\n",
		"scheme", "dopp", "cycles", "IPC", "vs base", "coverage", "accuracy")
	var base uint64
	_, err := eng.RunBatch(context.Background(), jobs, func(i int, res sim.Result, err error) {
		if err != nil {
			return
		}
		cfg := jobs[i].Config
		if cfg.Scheme == sim.Unsafe && !cfg.AddressPrediction {
			base = res.Cycles
		}
		fmt.Printf("%-12v %-6v %12d %8.2f %9.1f%% %9.1f%% %9.1f%%\n",
			cfg.Scheme, cfg.AddressPrediction, res.Cycles, res.IPC,
			float64(base)/float64(res.Cycles)*100,
			res.Coverage*100, res.Accuracy*100)
	})
	if err != nil {
		fail(err)
	}
}

func printResult(res sim.Result) {
	st := res.Stats
	m := res.Memory
	fmt.Printf("program            %s\n", res.Program)
	fmt.Printf("scheme             %v (doppelganger loads: %v)\n", res.Scheme, res.AP)
	fmt.Printf("cycles             %d\n", res.Cycles)
	fmt.Printf("instructions       %d (IPC %.3f)\n", res.Insts, res.IPC)
	fmt.Printf("loads / stores     %d / %d\n", st.CommittedLoads, st.CommittedStores)
	fmt.Printf("load levels        L1=%d L2=%d L3=%d mem=%d\n",
		st.CommittedLoadLevel[0], st.CommittedLoadLevel[1], st.CommittedLoadLevel[2], st.CommittedLoadLevel[3])
	fmt.Printf("branches           %d committed, %d mispredicted (%.2f%%)\n",
		st.CommittedBranches, st.BranchMispredicts, st.BranchMispredictRate()*100)
	fmt.Printf("squashed uops      %d (%d memory-order violations)\n", st.Squashed, st.MemOrderViolations)
	fmt.Printf("store forwards     %d\n", st.STLFForwards)
	fmt.Printf("prefetches         %d issued\n", st.PrefetchesIssued)
	if res.Scheme.DelaysOnMiss() {
		fmt.Printf("DoM delayed misses %d\n", st.DoMDelayedMisses)
	}
	if res.Scheme.TracksTaint() {
		fmt.Printf("STT taint stalls   %d\n", st.STTTaintStalls)
	}
	if res.AP {
		fmt.Printf("doppelgangers      %d predicted, %d issued, %d verified, %d mispredicted\n",
			st.DoppPredictions, st.DoppIssued, st.DoppVerified, st.DoppMispredicted)
		fmt.Printf("coverage/accuracy  %.1f%% / %.1f%%\n", res.Coverage*100, res.Accuracy*100)
	}
	if st.VPPredictions > 0 {
		fmt.Printf("value predictions  %d made, %d correct, %d squashed\n",
			st.VPPredictions, st.VPCorrect, st.VPMispredicted)
	}
	fmt.Printf("L1 accesses        %d (demand %d, doppelganger %d, prefetch %d, writeback %d), %d misses\n",
		m.L1Accesses, m.L1Demand, m.L1Doppelganger, m.L1Prefetch, m.L1Writeback, m.L1Misses)
	fmt.Printf("L2 / L3 accesses   %d / %d\n", m.L2Accesses, m.L3Accesses)
	fmt.Printf("DRAM accesses      %d reads, %d writebacks\n", m.DRAMAccesses, m.DRAMWrites)
	fmt.Printf("dirty evictions    L1=%d L2=%d L3=%d\n", m.WritebacksL1, m.WritebacksL2, m.WritebacksL3)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "doppelsim:", err)
	os.Exit(1)
}
