// Command leakcheck runs the differential side-channel checker: randomized
// transient-execution gadgets are executed twice with only the secret bytes
// differing, and any divergence in attacker-observable micro-architectural
// state (caches, MSHR timeline, predictors, traffic, cycles) is reported as
// a leak.
//
//	leakcheck -seeds 256                      # full matrix + mutation gauntlet
//	leakcheck -seeds 64 -schemes stt,dom      # subset of the scheme matrix
//	leakcheck -seeds 1024 -json               # machine-readable report
//	leakcheck -seeds 256 -minimize            # shrink each reproducer
//	leakcheck -seed 42 -schemes dom -ap on    # one seed, one cell, with disasm
//	leakcheck -seeds 256 -warmup 200          # every run forked from a mid-gadget checkpoint
//
// Exit status: 0 when every expectation holds (secure schemes silent, the
// unsafe baseline divergent, every planted mutation caught), 1 when any
// fails, 2 on usage or infrastructure errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"doppelganger/internal/leakcheck"
	"doppelganger/internal/secure"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 256, "number of gadget seeds to sweep per config")
		firstSeed = flag.Int64("first", 0, "first seed of the sweep")
		oneSeed   = flag.Int64("seed", -1, "check a single seed (prints its disassembly); overrides -seeds/-first")
		schemes   = flag.String("schemes", "unsafe,nda-p,stt,dom", "comma-separated schemes to sweep")
		apMode    = flag.String("ap", "both", "doppelganger loads: on, off or both")
		mutations = flag.Bool("mutations", true, "also run the mutation gauntlet (planted scheme weakenings must be caught)")
		mutSeeds  = flag.Int("mutation-seeds", 64, "max seeds to hunt per planted mutation")
		minimize  = flag.Bool("minimize", false, "minimize each leaking reproducer")
		warmup    = flag.Uint64("warmup", 0, "route each run through snapshot/restore after N warmed instructions (0 = straight-line)")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent gadget checks")
	)
	flag.Parse()

	cfgs, err := parseConfigs(*schemes, *apMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(2)
	}
	for i := range cfgs {
		cfgs[i].WarmupInsts = *warmup
	}
	first, n := *firstSeed, *seeds
	if *oneSeed >= 0 {
		first, n = *oneSeed, 1
	}

	ctx := context.Background()
	rep := report{Seeds: n, FirstSeed: first}
	sweeps, err := leakcheck.Sweep(ctx, cfgs, first, n, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(2)
	}
	for _, sw := range sweeps {
		rs := sweepReport{Config: sw.Config.String(), Seeds: sw.Seeds}
		if v := sw.Verdict(); v != "" {
			rs.Verdict = v
			rep.Failures = append(rep.Failures, v)
		}
		for _, sl := range sw.Leaks {
			lr := leakReport{Seed: sl.Seed, Components: sl.Leak.Components, Params: sl.Leak.Params.String()}
			if *minimize {
				min, err := leakcheck.Minimize(ctx, sl.Leak)
				if err != nil {
					fmt.Fprintln(os.Stderr, "leakcheck:", err)
					os.Exit(2)
				}
				lr.Minimized = min.String()
			}
			if *oneSeed >= 0 {
				lr.Disassembly = sl.Leak.Params.Disassemble()
			}
			rs.Leaks = append(rs.Leaks, lr)
		}
		rep.Sweeps = append(rep.Sweeps, rs)
	}

	if *mutations {
		outcomes, err := leakcheck.MutationGauntlet(ctx, first, *mutSeeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leakcheck:", err)
			os.Exit(2)
		}
		for _, o := range outcomes {
			mr := mutationReport{Mutation: o.Mutation.String(), Config: o.Config.String(),
				Detected: o.Detected, SeedsTried: o.SeedsTried}
			if o.Detected {
				mr.Seed = o.Seed
				mr.Components = o.Leak.Components
			} else {
				f := fmt.Sprintf("BLIND: planted mutation %s under %s not detected in %d seeds",
					o.Mutation, o.Config, o.SeedsTried)
				rep.Failures = append(rep.Failures, f)
			}
			rep.Mutations = append(rep.Mutations, mr)
		}
	}
	rep.OK = len(rep.Failures) == 0

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "leakcheck:", err)
			os.Exit(2)
		}
	} else {
		printText(rep)
	}
	if !rep.OK {
		os.Exit(1)
	}
}

type report struct {
	Seeds     int              `json:"seeds"`
	FirstSeed int64            `json:"first_seed"`
	Sweeps    []sweepReport    `json:"sweeps"`
	Mutations []mutationReport `json:"mutations,omitempty"`
	Failures  []string         `json:"failures,omitempty"`
	OK        bool             `json:"ok"`
}

type sweepReport struct {
	Config  string       `json:"config"`
	Seeds   int          `json:"seeds"`
	Leaks   []leakReport `json:"leaks,omitempty"`
	Verdict string       `json:"verdict,omitempty"`
}

type leakReport struct {
	Seed        int64    `json:"seed"`
	Components  []string `json:"components"`
	Params      string   `json:"params"`
	Minimized   string   `json:"minimized,omitempty"`
	Disassembly string   `json:"disassembly,omitempty"`
}

type mutationReport struct {
	Mutation   string   `json:"mutation"`
	Config     string   `json:"config"`
	Detected   bool     `json:"detected"`
	Seed       int64    `json:"seed,omitempty"`
	SeedsTried int      `json:"seeds_tried"`
	Components []string `json:"components,omitempty"`
}

func parseConfigs(schemes, apMode string) ([]leakcheck.Config, error) {
	var aps []bool
	switch apMode {
	case "both":
		aps = []bool{false, true}
	case "off":
		aps = []bool{false}
	case "on":
		aps = []bool{true}
	default:
		return nil, fmt.Errorf("invalid -ap %q (want on, off or both)", apMode)
	}
	var cfgs []leakcheck.Config
	for _, name := range strings.Split(schemes, ",") {
		s, err := secure.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		for _, ap := range aps {
			cfgs = append(cfgs, leakcheck.Config{Scheme: s, AP: ap})
		}
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("no schemes selected")
	}
	return cfgs, nil
}

func printText(rep report) {
	fmt.Printf("leakcheck: %d seeds from %d\n", rep.Seeds, rep.FirstSeed)
	for _, sw := range rep.Sweeps {
		status := "clean"
		if len(sw.Leaks) > 0 {
			status = fmt.Sprintf("%d/%d seeds leak", len(sw.Leaks), sw.Seeds)
		}
		fmt.Printf("  %-14s %s\n", sw.Config, status)
		for i, l := range sw.Leaks {
			if i >= 5 && sw.Verdict == "" {
				fmt.Printf("    ... %d more\n", len(sw.Leaks)-i)
				break
			}
			fmt.Printf("    seed %-6d via %s\n", l.Seed, strings.Join(l.Components, ","))
			if l.Minimized != "" {
				fmt.Printf("      minimized: %s\n", l.Minimized)
			}
			if l.Disassembly != "" {
				fmt.Println(indent(l.Disassembly, "      "))
			}
		}
	}
	if len(rep.Mutations) > 0 {
		fmt.Println("mutation gauntlet:")
		for _, m := range rep.Mutations {
			if m.Detected {
				fmt.Printf("  %-16s caught under %-22s at seed %d via %s\n",
					m.Mutation, m.Config, m.Seed, strings.Join(m.Components, ","))
			} else {
				fmt.Printf("  %-16s NOT CAUGHT under %s (%d seeds)\n", m.Mutation, m.Config, m.SeedsTried)
			}
		}
	}
	if rep.OK {
		fmt.Println("ok: secure schemes silent, unsafe baseline divergent, all mutations caught")
		return
	}
	for _, f := range rep.Failures {
		fmt.Println("FAIL:", f)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
