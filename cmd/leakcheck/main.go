// Command leakcheck runs the differential side-channel checker: randomized
// transient-execution gadgets are executed twice with only the secret bytes
// differing, and any divergence in attacker-observable state — per contract
// clause, from secret-filtered architectural state up through caches, MSHR
// timeline, predictors, traffic, trace digests and cycles — is reported as
// a leak.
//
//	leakcheck -seeds 256                      # full matrix + mutation gauntlet
//	leakcheck -seeds 64 -schemes stt,dom      # subset of the scheme matrix
//	leakcheck -seeds 1024 -json               # machine-readable report
//	leakcheck -seeds 256 -minimize            # shrink each reproducer
//	leakcheck -seed 42 -schemes dom -ap on    # one seed, one cell, with disasm
//	leakcheck -seeds 256 -warmup 200          # every run forked from a mid-gadget checkpoint
//	leakcheck -contracts -seeds 64            # per-scheme contract matrix
//	leakcheck -contracts -golden m.json       # diff the matrix against a golden
//	leakcheck -campaign -budget 512           # coverage-guided campaign
//	leakcheck -campaign -corpus .corpus/c.dgcf # ... resumable across invocations
//	leakcheck -campaign -schemes 'dom!dom-issue-miss' # hunt a planted weakening
//	leakcheck -campaign -schemes 'cleanup!cleanup-no-lru-undo' # hunt a broken rollback
//
// Exit status: 0 when every expectation holds (secure schemes silent, the
// unsafe baseline divergent, every planted mutation caught — in contract
// mode: the measured matrix matches the golden and every mutation
// downgrades at least one cell; in campaign mode: no unmutated secure
// config leaks), 1 when any fails, 2 on usage or infrastructure errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"doppelganger/api"
	"doppelganger/internal/campaign"
	"doppelganger/internal/leakcheck"
	"doppelganger/internal/secure"
	"doppelganger/sim"
)

// Envelope schema: bumped from the original (implicit) version 1 when the
// report grew scheme/ap/tool metadata and contract-matrix sections. Old
// fields keep their names and meaning; consumers select on schema_version.
const (
	schemaVersion = 2
	toolVersion   = "0.9.0"
)

func main() {
	var (
		seeds        = flag.Int("seeds", 256, "number of gadget seeds to sweep per config")
		firstSeed    = flag.Int64("first", 0, "first seed of the sweep")
		oneSeed      = flag.Int64("seed", -1, "check a single seed (prints its disassembly); overrides -seeds/-first")
		schemes      = flag.String("schemes", "unsafe,nda-p,stt,dom,cleanup", "comma-separated schemes to sweep; scheme!mutation plants a gauntlet weakening")
		apMode       = flag.String("ap", "both", "doppelganger loads: on, off or both")
		mutations    = flag.Bool("mutations", true, "also run the mutation gauntlet (planted scheme weakenings must be caught)")
		mutSeeds     = flag.Int("mutation-seeds", 64, "max seeds to hunt per planted mutation")
		minimize     = flag.Bool("minimize", false, "minimize each leaking reproducer")
		warmup       = flag.Uint64("warmup", 0, "route each run through snapshot/restore after N warmed instructions (0 = straight-line)")
		contracts    = flag.Bool("contracts", false, "evaluate the full contract lattice and emit the per-scheme contract matrix")
		campaignRun  = flag.Bool("campaign", false, "run a coverage-guided campaign instead of a fixed-seed sweep")
		budget       = flag.Int("budget", 256, "campaign mode: genome evaluations to spend")
		corpusPath   = flag.String("corpus", "", "campaign mode: persistent corpus file (resumed when present)")
		blind        = flag.Bool("blind", false, "campaign mode: disable coverage guidance (baseline sweep generator)")
		golden       = flag.String("golden", "", "contract mode: compare the measured matrix against this golden JSON file")
		updateGolden = flag.Bool("update-golden", false, "contract mode: write the measured matrix to the -golden path instead of comparing")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent gadget checks")
	)
	flag.Parse()

	cfgs, err := parseConfigs(*schemes, *apMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(2)
	}
	for i := range cfgs {
		cfgs[i].WarmupInsts = *warmup
	}
	first, n := *firstSeed, *seeds
	if *oneSeed >= 0 {
		first, n = *oneSeed, 1
	}

	ctx := context.Background()
	if *campaignRun {
		runCampaign(ctx, cfgs, *budget, first, *corpusPath, *blind, *jsonOut)
		return
	}
	rep := report{
		Schema:    schemaVersion,
		Tool:      toolMeta{Name: "leakcheck", Version: toolVersion},
		Schemes:   strings.Split(*schemes, ","),
		AP:        *apMode,
		Seeds:     n,
		FirstSeed: first,
		Warmup:    *warmup,
	}
	for i := range rep.Schemes {
		rep.Schemes[i] = strings.TrimSpace(rep.Schemes[i])
	}

	if *contracts {
		runContracts(ctx, &rep, cfgs, first, n, *workers, *mutations, *mutSeeds, *golden, *updateGolden)
	} else {
		runClassic(ctx, &rep, cfgs, first, n, *workers, *mutations, *mutSeeds, *minimize, *oneSeed)
	}
	rep.OK = len(rep.Failures) == 0

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "leakcheck:", err)
			os.Exit(2)
		}
	} else if *contracts {
		printContracts(rep)
	} else {
		printText(rep)
	}
	if !rep.OK {
		os.Exit(1)
	}
}

// runCampaign is the coverage-guided mode: spend the budget on
// scheduler-chosen gadget genomes, persist (and resume) the corpus when a
// path is given, and emit the summary as an api.CampaignResponse. The
// security expectation is the same as a sweep's: an unmutated secure
// config must not leak.
func runCampaign(ctx context.Context, cfgs []leakcheck.Config,
	budget int, seed int64, corpusPath string, blind, jsonOut bool) {
	opts := campaign.Options{
		Configs:    cfgs,
		Budget:     budget,
		Seed:       seed,
		CorpusPath: corpusPath,
		Blind:      blind,
	}
	if !jsonOut {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	sum, err := campaign.Run(ctx, opts)
	if err != nil {
		fatal(err)
	}

	resp := api.CampaignResponse{
		Schema:   api.SchemaVersion,
		ID:       "campaign-local",
		Budget:   budget,
		Seed:     seed,
		Evals:    sum.Evals,
		Pairs:    sum.Pairs,
		Cells:    sum.Cells,
		NewLeaks: sum.NewLeaks,
		DupLeaks: sum.DupLeaks,
	}
	var failures []string
	for _, lk := range sum.Leaks {
		resp.Leaks = append(resp.Leaks, api.CampaignLeak{
			Config:     lk.Config.String(),
			Params:     lk.Params.String(),
			Components: lk.Components,
			Clauses:    lk.Clauses,
			Key:        lk.Key,
		})
		if lk.Config.Secure() {
			failures = append(failures,
				fmt.Sprintf("SECURITY: %s leaks via %s (%s)",
					lk.Config, strings.Join(lk.Components, ","), lk.Params))
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("leakcheck %s campaign: %d evals (%d pairs), %d coverage cells\n",
			toolVersion, sum.Evals, sum.Pairs, sum.Cells)
		fmt.Printf("  corpus: %d inputs (%d resumed), %d new + %d duplicate leaks\n",
			sum.CorpusInputs, sum.ResumedInputs, sum.NewLeaks, sum.DupLeaks)
		for _, lk := range sum.Leaks {
			fmt.Printf("  %-22s %s via %s\n", lk.Config, lk.Params, strings.Join(lk.Components, ","))
		}
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		if len(failures) == 0 {
			fmt.Println("ok: no unmutated secure config leaks")
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// runClassic is the original two-run boolean oracle: sweep + mutation
// gauntlet, verdicts against the secure/unsafe expectations.
func runClassic(ctx context.Context, rep *report, cfgs []leakcheck.Config,
	first int64, n, workers int, mutations bool, mutSeeds int, minimize bool, oneSeed int64) {
	sweeps, err := leakcheck.Sweep(ctx, cfgs, first, n, workers)
	if err != nil {
		fatal(err)
	}
	for _, sw := range sweeps {
		rs := sweepReport{Config: sw.Config.String(), Seeds: sw.Seeds}
		if v := sw.Verdict(); v != "" {
			rs.Verdict = v
			rep.Failures = append(rep.Failures, v)
		}
		for _, sl := range sw.Leaks {
			lr := leakReport{Seed: sl.Seed, Components: sl.Leak.Components, Params: sl.Leak.Params.String()}
			if minimize {
				min, err := leakcheck.Minimize(ctx, sl.Leak)
				if err != nil {
					fatal(err)
				}
				lr.Minimized = min.String()
			}
			if oneSeed >= 0 {
				lr.Disassembly = sl.Leak.Params.Disassemble()
			}
			rs.Leaks = append(rs.Leaks, lr)
		}
		rep.Sweeps = append(rep.Sweeps, rs)
	}

	if mutations {
		outcomes, err := leakcheck.MutationGauntlet(ctx, first, mutSeeds)
		if err != nil {
			fatal(err)
		}
		for _, o := range outcomes {
			rep.Mutations = append(rep.Mutations, mutationOutcomeReport(o, rep))
		}
	}
}

// runContracts evaluates the contract lattice per config, optionally
// checks the mutation gauntlet for contract downgrades, and diffs or
// updates the golden matrix.
func runContracts(ctx context.Context, rep *report, cfgs []leakcheck.Config,
	first int64, n, workers int, mutations bool, mutSeeds int, golden string, updateGolden bool) {
	results, err := leakcheck.ContractSweep(ctx, cfgs, first, n, workers)
	if err != nil {
		fatal(err)
	}
	for _, r := range results {
		cr := contractReport{Config: r.Config.String(), Seeds: r.Seeds}
		for _, c := range r.Cells {
			cc := clauseReport{Clause: c.Clause.String(), Leaks: c.Leaks, Components: c.Components}
			if c.Leaks > 0 {
				cc.FirstSeed = c.FirstSeed
			}
			cr.Cells = append(cr.Cells, cc)
		}
		for _, c := range r.Strongest() {
			cr.Strongest = append(cr.Strongest, c.String())
		}
		rep.Contracts = append(rep.Contracts, cr)

		// Built-in expectations, independent of the golden: a secure
		// scheme upholds at least the weakest contract; the unsafe
		// baseline must be distinguishable somewhere or the oracle is
		// vacuous.
		switch {
		case r.Config.Secure() && !r.Satisfies(sim.ArchSeq):
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("SECURITY: %s leaks under arch-seq (architectural leak)", r.Config))
		case !r.Config.Secure() && r.Satisfies(sim.CTSpec):
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("VACUOUS: %s satisfies ct-spec on %d seeds — the oracle saw nothing", r.Config, r.Seeds))
		}
	}
	matrix := leakcheck.MatrixOf(results)
	rep.Matrix = &matrix

	if mutations {
		outcomes, err := leakcheck.MutationGauntlet(ctx, first, mutSeeds)
		if err != nil {
			fatal(err)
		}
		for _, o := range outcomes {
			mr := mutationOutcomeReport(o, rep)
			if o.Detected && len(o.Downgrades) == 0 {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("NO DOWNGRADE: mutation %s caught but no contract cell leaked", o.Mutation))
			}
			rep.Mutations = append(rep.Mutations, mr)
		}
	}

	switch {
	case golden != "" && updateGolden:
		data, err := matrix.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(golden, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "leakcheck: wrote golden matrix to %s\n", golden)
	case golden != "":
		data, err := os.ReadFile(golden)
		if err != nil {
			fatal(err)
		}
		want, err := leakcheck.ParseMatrix(data)
		if err != nil {
			fatal(err)
		}
		for _, d := range matrix.Diff(want) {
			rep.Failures = append(rep.Failures, "GOLDEN: "+d)
		}
	}
}

// mutationOutcomeReport converts a gauntlet outcome, recording a failure
// on the report when the mutation went undetected.
func mutationOutcomeReport(o leakcheck.MutationOutcome, rep *report) mutationReport {
	mr := mutationReport{Mutation: o.Mutation.String(), Config: o.Config.String(),
		Detected: o.Detected, SeedsTried: o.SeedsTried}
	if o.Detected {
		mr.Seed = o.Seed
		mr.Components = o.Leak.Components
		for _, c := range o.Downgrades {
			mr.Downgrades = append(mr.Downgrades, c.String())
		}
	} else {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("BLIND: planted mutation %s under %s not detected in %d seeds",
				o.Mutation, o.Config, o.SeedsTried))
	}
	return mr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leakcheck:", err)
	os.Exit(2)
}

type toolMeta struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type report struct {
	Schema    int      `json:"schema_version"`
	Tool      toolMeta `json:"tool"`
	Schemes   []string `json:"schemes"`
	AP        string   `json:"ap"`
	Seeds     int      `json:"seeds"`
	FirstSeed int64    `json:"first_seed"`
	Warmup    uint64   `json:"warmup_insts,omitempty"`

	Sweeps    []sweepReport             `json:"sweeps,omitempty"`
	Contracts []contractReport          `json:"contracts,omitempty"`
	Matrix    *leakcheck.ContractMatrix `json:"matrix,omitempty"`
	Mutations []mutationReport          `json:"mutations,omitempty"`
	Failures  []string                  `json:"failures,omitempty"`
	OK        bool                      `json:"ok"`
}

type sweepReport struct {
	Config  string       `json:"config"`
	Seeds   int          `json:"seeds"`
	Leaks   []leakReport `json:"leaks,omitempty"`
	Verdict string       `json:"verdict,omitempty"`
}

type leakReport struct {
	Seed        int64    `json:"seed"`
	Components  []string `json:"components"`
	Params      string   `json:"params"`
	Minimized   string   `json:"minimized,omitempty"`
	Disassembly string   `json:"disassembly,omitempty"`
}

type contractReport struct {
	Config    string         `json:"config"`
	Seeds     int            `json:"seeds"`
	Cells     []clauseReport `json:"cells"`
	Strongest []string       `json:"strongest"`
}

type clauseReport struct {
	Clause     string   `json:"clause"`
	Leaks      int      `json:"leaks"`
	FirstSeed  int64    `json:"first_seed,omitempty"`
	Components []string `json:"components,omitempty"`
}

type mutationReport struct {
	Mutation   string   `json:"mutation"`
	Config     string   `json:"config"`
	Detected   bool     `json:"detected"`
	Seed       int64    `json:"seed,omitempty"`
	SeedsTried int      `json:"seeds_tried"`
	Components []string `json:"components,omitempty"`
	Downgrades []string `json:"downgrades,omitempty"`
}

func parseConfigs(schemes, apMode string) ([]leakcheck.Config, error) {
	var aps []bool
	switch apMode {
	case "both":
		aps = []bool{false, true}
	case "off":
		aps = []bool{false}
	case "on":
		aps = []bool{true}
	default:
		return nil, fmt.Errorf("invalid -ap %q (want on, off or both)", apMode)
	}
	var cfgs []leakcheck.Config
	for _, name := range strings.Split(schemes, ",") {
		// "scheme!mutation" plants one of the gauntlet's deliberate
		// weakenings into the scheme (the config the campaign hunts in
		// TestCampaignFindsAllPlantedMutations); bare names stay intact.
		name, mutName, mutated := strings.Cut(strings.TrimSpace(name), "!")
		s, err := secure.ParseScheme(name)
		if err != nil {
			return nil, err
		}
		mut := secure.MutNone
		if mutated {
			if mut, err = secure.ParseMutation(mutName); err != nil {
				return nil, err
			}
		}
		for _, ap := range aps {
			cfgs = append(cfgs, leakcheck.Config{Scheme: s, AP: ap, Mutation: mut})
		}
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("no schemes selected")
	}
	return cfgs, nil
}

func printText(rep report) {
	fmt.Printf("leakcheck %s: %d seeds from %d\n", toolVersion, rep.Seeds, rep.FirstSeed)
	for _, sw := range rep.Sweeps {
		status := "clean"
		if len(sw.Leaks) > 0 {
			status = fmt.Sprintf("%d/%d seeds leak", len(sw.Leaks), sw.Seeds)
		}
		fmt.Printf("  %-14s %s\n", sw.Config, status)
		for i, l := range sw.Leaks {
			if i >= 5 && sw.Verdict == "" {
				fmt.Printf("    ... %d more\n", len(sw.Leaks)-i)
				break
			}
			fmt.Printf("    seed %-6d via %s\n", l.Seed, strings.Join(l.Components, ","))
			if l.Minimized != "" {
				fmt.Printf("      minimized: %s\n", l.Minimized)
			}
			if l.Disassembly != "" {
				fmt.Println(indent(l.Disassembly, "      "))
			}
		}
	}
	printMutations(rep)
	if rep.OK {
		fmt.Println("ok: secure schemes silent, unsafe baseline divergent, all mutations caught")
		return
	}
	for _, f := range rep.Failures {
		fmt.Println("FAIL:", f)
	}
}

// printContracts renders the contract matrix as a table: one row per
// config, one column per lattice clause.
func printContracts(rep report) {
	fmt.Printf("leakcheck %s contract matrix: %d seeds from %d\n", toolVersion, rep.Seeds, rep.FirstSeed)
	clauses := make([]string, 0, len(sim.Lattice()))
	for _, c := range sim.Lattice() {
		clauses = append(clauses, c.String())
	}
	fmt.Printf("  %-14s", "config")
	for _, c := range clauses {
		fmt.Printf(" %-9s", c)
	}
	fmt.Println(" strongest")
	for _, cr := range rep.Contracts {
		fmt.Printf("  %-14s", cr.Config)
		byClause := map[string]clauseReport{}
		for _, c := range cr.Cells {
			byClause[c.Clause] = c
		}
		for _, name := range clauses {
			c := byClause[name]
			cell := "ok"
			if c.Leaks > 0 {
				cell = fmt.Sprintf("%d/%d", c.Leaks, cr.Seeds)
			}
			fmt.Printf(" %-9s", cell)
		}
		fmt.Printf(" %s\n", strings.Join(cr.Strongest, ","))
	}
	// Per-cell leaking components, one line per leaked cell.
	for _, cr := range rep.Contracts {
		for _, c := range cr.Cells {
			if c.Leaks > 0 {
				fmt.Printf("  %s/%s: first seed %d via %s\n",
					cr.Config, c.Clause, c.FirstSeed, strings.Join(c.Components, ","))
			}
		}
	}
	printMutations(rep)
	if rep.OK {
		fmt.Println("ok: matrix as expected, every planted mutation downgrades a contract cell")
		return
	}
	for _, f := range rep.Failures {
		fmt.Println("FAIL:", f)
	}
}

func printMutations(rep report) {
	if len(rep.Mutations) == 0 {
		return
	}
	fmt.Println("mutation gauntlet:")
	for _, m := range rep.Mutations {
		switch {
		case m.Detected && len(m.Downgrades) > 0:
			fmt.Printf("  %-16s caught under %-22s at seed %d, downgrades %s\n",
				m.Mutation, m.Config, m.Seed, strings.Join(m.Downgrades, ","))
		case m.Detected:
			fmt.Printf("  %-16s caught under %-22s at seed %d via %s\n",
				m.Mutation, m.Config, m.Seed, strings.Join(m.Components, ","))
		default:
			fmt.Printf("  %-16s NOT CAUGHT under %s (%d seeds)\n", m.Mutation, m.Config, m.SeedsTried)
		}
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
