// Package doppelganger reproduces "Doppelganger Loads: A Safe,
// Complexity-Effective Optimization for Secure Speculation Schemes"
// (Kvalsvik, Aimoniotis, Kaxiras, Själander — ISCA 2023) as a
// self-contained Go library.
//
// The public API lives in the sim package; the cycle-level out-of-order
// core, memory hierarchy, secure speculation schemes (NDA-P, STT,
// Delay-on-Miss), shared stride predictor/prefetcher, and synthetic
// benchmark suite live under internal/. The benchmarks in this package
// (bench_test.go) regenerate every table and figure of the paper's
// evaluation; cmd/figures prints them as text reports.
package doppelganger
