// Package api defines the wire types of the doppeld HTTP API: requests and
// responses for /v1/run, /v1/sweep, /v1/checkpoint, /v1/leakcheck and
// /v1/campaign. The
// same structs are consumed by the server (cmd/doppeld), the load generator
// (cmd/doppelbench), and any external client; the JSON field names are the
// contract.
//
// Responses carry an explicit schema_version (SchemaVersion). The version
// bumps whenever a field changes meaning or is removed; adding new optional
// fields does not bump it. Clients should accept any version ≥ the one they
// were built against and select on the field when shapes diverge.
package api

import "doppelganger/sim"

// SchemaVersion is the current wire-schema version, stamped into every
// response. Version 1 was the original unversioned shape; version 2 added
// the version stamp itself and the /v1/leakcheck contract endpoint.
const SchemaVersion = 2

// RunRequest asks for one simulation: a suite workload under one
// configuration.
type RunRequest struct {
	// Workload is a suite workload name (see doppelsim -list).
	Workload string `json:"workload"`
	// Scale is "test" or "full" (default "full").
	Scale string `json:"scale,omitempty"`
	// Scheme is the secure speculation scheme name (default "unsafe").
	Scheme string `json:"scheme,omitempty"`
	// AP enables doppelganger loads.
	AP bool `json:"ap,omitempty"`
	// MaxInsts bounds committed instructions (0 = run to halt).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// MaxCycles bounds simulated cycles (0 = default budget).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TimeoutMS bounds the run's wall-clock time in milliseconds
	// (0 = the server's default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace attaches a trace sink to the run and returns the captured
	// events in the response. Traced runs bypass the result cache.
	Trace bool `json:"trace,omitempty"`
	// TraceEvents caps how many of the most recent events are kept
	// (0 = a server default; the server also enforces a hard ceiling).
	TraceEvents int `json:"trace_events,omitempty"`
	// Checkpoint warm-starts the run from a stored checkpoint (an ID from
	// POST /v1/checkpoint or /v1/checkpoint/import). Workload may then be
	// omitted — the checkpoint embeds its program — or named as a
	// compatibility cross-check. MaxInsts counts total committed
	// instructions including the checkpoint's warmup.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// RunResponse is one completed simulation.
type RunResponse struct {
	Schema int `json:"schema_version"`
	// ID retrieves this response later via GET /v1/results/{id}.
	ID       string     `json:"id"`
	Workload string     `json:"workload"`
	Scale    string     `json:"scale"`
	Scheme   string     `json:"scheme"`
	AP       bool       `json:"ap"`
	Result   sim.Result `json:"result"`
	// Events holds the run's captured trace (most recent first-to-last)
	// when the request set "trace"; EventsDropped counts older events that
	// fell out of the bounded ring.
	Events        []sim.TraceEvent `json:"events,omitempty"`
	EventsDropped uint64           `json:"events_dropped,omitempty"`
}

// SweepRequest asks for a workload × scheme × ±AP matrix.
type SweepRequest struct {
	// Workloads restricts the sweep (empty = the full suite).
	Workloads []string `json:"workloads,omitempty"`
	// Schemes restricts the sweep by name (empty = unsafe + the paper's
	// three schemes).
	Schemes []string `json:"schemes,omitempty"`
	// AP is "both" (default), "on", or "off".
	AP string `json:"ap,omitempty"`
	// Scale is "test" or "full" (default "full").
	Scale string `json:"scale,omitempty"`
	// MaxInsts bounds committed instructions per cell.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// MaxCycles bounds simulated cycles per cell.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// SweepCell is one cell of a sweep.
type SweepCell struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	AP       bool   `json:"ap"`
	// NormIPC is the cell's IPC normalized to the same workload's unsafe
	// no-AP baseline; present only when the sweep includes that baseline.
	NormIPC float64    `json:"norm_ipc,omitempty"`
	Result  sim.Result `json:"result"`
}

// SweepResponse is a completed sweep in matrix order (workload, scheme,
// then -AP/+AP).
type SweepResponse struct {
	Schema int         `json:"schema_version"`
	ID     string      `json:"id"`
	Scale  string      `json:"scale"`
	Cells  []SweepCell `json:"cells"`
}

// CheckpointRequest asks the server to warm up a workload and snapshot the
// complete simulation state for later warm-started runs.
type CheckpointRequest struct {
	// Workload is a suite workload name (required).
	Workload string `json:"workload"`
	// Scale is "test" or "full" (default "full").
	Scale string `json:"scale,omitempty"`
	// Scheme is the scheme to warm under (default "unsafe").
	Scheme string `json:"scheme,omitempty"`
	// AP enables doppelganger loads during warmup.
	AP bool `json:"ap,omitempty"`
	// WarmupInsts is how many instructions to commit before snapshotting
	// (required, > 0).
	WarmupInsts uint64 `json:"warmup_insts"`
}

// CheckpointResponse describes a stored checkpoint. The ID references it in
// RunRequest.Checkpoint and GET /v1/checkpoint/{id}; the digest is its
// content identity (the engine folds it into cache keys).
type CheckpointResponse struct {
	Schema      int    `json:"schema_version"`
	ID          string `json:"id"`
	Workload    string `json:"workload"`
	Scheme      string `json:"scheme"`
	AP          bool   `json:"ap,omitempty"`
	WarmupInsts uint64 `json:"warmup_insts"`
	// Insts and Cycle are the actual commit count and cycle the snapshot
	// was taken at (the drain may commit slightly past WarmupInsts).
	Insts     uint64 `json:"insts"`
	Cycle     uint64 `json:"cycle"`
	Digest    string `json:"digest"`
	SizeBytes int    `json:"size_bytes"`
}

// LeakcheckRequest asks the server to evaluate the contract lattice over
// randomized differential gadget pairs and report the per-scheme contract
// matrix.
type LeakcheckRequest struct {
	// Schemes restricts the matrix rows by scheme name (empty = unsafe +
	// the paper's three schemes). Each scheme contributes a ±AP row pair
	// unless AP narrows it.
	Schemes []string `json:"schemes,omitempty"`
	// AP is "both" (default), "on", or "off".
	AP string `json:"ap,omitempty"`
	// FirstSeed is the first gadget seed of the sweep (default 0).
	FirstSeed int64 `json:"first_seed,omitempty"`
	// Seeds is how many gadget seeds to sweep per config (default a server
	// choice; the server also enforces a ceiling — contract sweeps are
	// hundreds of simulations).
	Seeds int `json:"seeds,omitempty"`
}

// ContractCell is one contract-matrix cell: a lattice clause and whether
// the config's differential pairs stayed indistinguishable under it.
type ContractCell struct {
	// Clause is the contract notation, e.g. "ct-spec" (constant-time
	// observer, transient execution included).
	Clause string `json:"clause"`
	// Verdict is "satisfied" or "leaked".
	Verdict string `json:"verdict"`
	// Leaks counts distinguishable seeds; 0 when satisfied.
	Leaks int `json:"leaks"`
	// FirstSeed is the smallest leaking seed (present when Leaks > 0).
	FirstSeed int64 `json:"first_seed,omitempty"`
	// Components names the observation components that diverged, union
	// over all leaking seeds.
	Components []string `json:"components,omitempty"`
}

// ContractRow is one config row of the contract matrix.
type ContractRow struct {
	// Config names the scheme cell, e.g. "dom+ap".
	Config string `json:"config"`
	// Cells holds one entry per lattice clause in canonical order
	// (arch-seq, arch-spec, pc-seq, pc-spec, ct-seq, ct-spec).
	Cells []ContractCell `json:"cells"`
	// Strongest lists the maximal satisfied clauses — the strongest
	// contracts the scheme upholds on this sweep.
	Strongest []string `json:"strongest"`
}

// LeakcheckResponse is a completed contract sweep.
type LeakcheckResponse struct {
	Schema int    `json:"schema_version"`
	ID     string `json:"id"`
	// Seeds and FirstSeed echo the effective sweep range after server
	// clamping.
	Seeds     int           `json:"seeds"`
	FirstSeed int64         `json:"first_seed"`
	Matrix    []ContractRow `json:"matrix"`
}

// CampaignRequest asks the server for a coverage-guided leakcheck
// campaign: instead of sweeping a fixed seed range, the server mutates
// gadget genomes toward unexplored micro-architectural coverage and
// reports every minimized, deduplicated leak reproducer the budget found.
type CampaignRequest struct {
	// Schemes restricts the evaluated configs by scheme name (empty =
	// unsafe + the paper's three schemes). Each scheme contributes a ±AP
	// config pair unless AP narrows it.
	Schemes []string `json:"schemes,omitempty"`
	// AP is "both" (default), "on", or "off".
	AP string `json:"ap,omitempty"`
	// Budget is the number of genome evaluations (default a server
	// choice; the server also enforces a ceiling — each evaluation is one
	// differential pair simulated under every config).
	Budget int `json:"budget,omitempty"`
	// Seed drives the campaign scheduler; a fixed seed reproduces the
	// campaign exactly.
	Seed int64 `json:"seed,omitempty"`
	// Blind disables coverage guidance and samples the historical sweep
	// generator instead (the baseline campaigns are measured against).
	Blind bool `json:"blind,omitempty"`
}

// CampaignLeak is one minimized leak reproducer a campaign found.
type CampaignLeak struct {
	// Config names the scheme cell the pair leaked under, e.g. "dom+ap"
	// or "stt!stt-no-taint".
	Config string `json:"config"`
	// Params is the minimized reproducer's canonical parameter rendering.
	Params string `json:"params"`
	// Components are the diverging observation components; Clauses the
	// leaked contract clauses.
	Components []string `json:"components"`
	Clauses    []string `json:"clauses,omitempty"`
	// Key is the reproducer's content identity (stable across runs).
	Key string `json:"key"`
}

// CampaignResponse is a completed campaign.
type CampaignResponse struct {
	Schema int    `json:"schema_version"`
	ID     string `json:"id"`
	// Budget and Seed echo the effective values after server clamping.
	Budget int   `json:"budget"`
	Seed   int64 `json:"seed"`
	// Evals is the number of genomes evaluated, Pairs the differential
	// pairs simulated (Evals × configs), Cells the distinct coverage
	// cells populated.
	Evals int `json:"evals"`
	Pairs int `json:"pairs"`
	Cells int `json:"cells"`
	// NewLeaks counts distinct reproducers discovered by this run;
	// DupLeaks counts finds deduplicated against already-known behaviour.
	NewLeaks int            `json:"new_leaks"`
	DupLeaks int            `json:"dup_leaks"`
	Leaks    []CampaignLeak `json:"leaks,omitempty"`
}

// Error is the JSON body of every non-2xx reply.
type Error struct {
	Error string `json:"error"`
}
